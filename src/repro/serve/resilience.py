"""Resilience primitives for the serving stack.

Client side
-----------
:class:`RetryPolicy` — exponential backoff with *seeded* full jitter
(the retry schedule is as replayable as the fault plan that provoked
it) honouring server ``Retry-After`` hints, bounded by an attempt count
and an optional wall-clock deadline budget.
:class:`CircuitBreaker` — consecutive transport/5xx failures open the
circuit; while open, calls fail fast with the typed
:class:`CircuitOpen`; after a cooldown exactly one half-open probe is
admitted, and its outcome closes or re-opens the circuit.

Server side
-----------
:class:`FailureBudget` — a sliding-window failure counter per served
model.  Inside the window, failures mark the model ``degraded``;
exceeding the budget quarantines it for a cooldown (requests answer
503 + ``Retry-After`` instead of taking the daemon down), after which
traffic is admitted again.
:class:`IdempotencyCache` — event-loop-confined dedup of retried
requests.  A request carrying an ``Idempotency-Key`` claims an
in-flight slot; concurrent duplicates await the original's outcome and
completed successes are replayed from an LRU — so a retried ``/verify``
or ``predict_all`` batch is served *once*, and the streamed suppression
statistic is never double-counted (a correctness requirement: retries
must not bias the Table-2 verdict).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..exceptions import ReproError, ValidationError

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "FailureBudget",
    "IdempotencyCache",
    "RequestAbandoned",
    "RetryPolicy",
]


class RequestAbandoned(ReproError, RuntimeError):
    """The original holder of an idempotency key exited without a response."""


class CircuitOpen(ReproError, RuntimeError):
    """Fail-fast rejection while the client's circuit breaker is open."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker open; retry in {retry_after:.3f}s"
        )
        self.retry_after = float(retry_after)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    The delay before attempt ``k`` (0-based; attempt 0 has no delay) is
    ``max(retry_after_hint, U(0, min(max_delay, base_delay * 2**(k-1))))``
    — AWS-style full jitter with the server's ``Retry-After`` as a
    floor.  ``deadline`` bounds the *whole* logical operation: a retry
    whose backoff would overrun the budget is not attempted.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("backoff delays must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValidationError(
                f"deadline budget must be positive, got {self.deadline}"
            )

    def backoff(self, attempt: int, rng, retry_after: float = 0.0) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        jitter = float(rng.uniform(0.0, ceiling)) if ceiling > 0 else 0.0
        return max(float(retry_after), jitter)


class CircuitBreaker:
    """Closed → open on repeated failures → one half-open probe.

    Thread-safe; shared by every request a client issues.  States:

    ``closed``
        Normal operation; ``failure_threshold`` *consecutive* failures
        trip the breaker.
    ``open``
        Calls raise :class:`CircuitOpen` immediately for
        ``reset_timeout`` seconds.
    ``half-open``
        After the cooldown, exactly one probe call is admitted; its
        success closes the circuit, its failure re-opens it (fresh
        cooldown).  Concurrent calls during the probe still fail fast.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> None:
        """Admit a call or raise :class:`CircuitOpen` (typed fail-fast)."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half-open" and not self._probing:
                self._probing = True  # this caller is the probe
                return
            remaining = max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )
            raise CircuitOpen(retry_after=remaining or self.reset_timeout)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._probing:
                # The half-open probe failed: re-open with a fresh cooldown.
                self._probing = False
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()


class FailureBudget:
    """Per-model failure accounting: healthy → degraded → quarantined.

    Failures inside the sliding ``window`` accumulate; reaching
    ``max_failures`` quarantines the model for ``quarantine_seconds``
    (the daemon answers 503 + ``Retry-After`` for it, other models keep
    serving).  When the quarantine lapses the budget resets and traffic
    probes the model again.  Successes decay the window so a model that
    recovered stops reading as degraded.
    """

    def __init__(
        self,
        max_failures: int = 5,
        window: float = 30.0,
        quarantine_seconds: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if max_failures < 1:
            raise ValidationError(
                f"max_failures must be >= 1, got {max_failures}"
            )
        self.max_failures = int(max_failures)
        self.window = float(window)
        self.quarantine_seconds = float(quarantine_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failure_times: list[float] = []
        self._quarantined_until: float | None = None
        self.n_failures = 0
        self.n_quarantines = 0

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.window
        self._failure_times = [t for t in self._failure_times if t > horizon]
        if (
            self._quarantined_until is not None
            and now >= self._quarantined_until
        ):
            self._quarantined_until = None
            self._failure_times.clear()

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            self.n_failures += 1
            self._prune_locked(now)
            self._failure_times.append(now)
            if (
                self._quarantined_until is None
                and len(self._failure_times) >= self.max_failures
            ):
                self._quarantined_until = now + self.quarantine_seconds
                self.n_quarantines += 1

    def record_success(self) -> None:
        with self._lock:
            self._prune_locked(self._clock())
            if self._failure_times:
                self._failure_times.pop(0)

    def state(self) -> str:
        with self._lock:
            now = self._clock()
            self._prune_locked(now)
            if self._quarantined_until is not None:
                return "quarantined"
            return "degraded" if self._failure_times else "healthy"

    def retry_after(self) -> float:
        """Seconds until the quarantine lapses (0 when not quarantined)."""
        with self._lock:
            if self._quarantined_until is None:
                return 0.0
            return max(0.0, self._quarantined_until - self._clock())


class IdempotencyCache:
    """Dedup retried requests by their ``Idempotency-Key``.

    Confined to the daemon's event loop (no locks needed).  For each
    key the cache is in exactly one state: *in-flight* (an
    ``asyncio.Future`` duplicates await) or *completed* (the stored
    response, replayed verbatim).  Only definitive responses are
    stored: 2xx results and 4xx client errors are replayed, and so is
    504 — an executor timeout means the engine call is *still running*
    (a thread cannot be cancelled) and will be counted by the traffic
    observer when it lands, so a retry that re-executed would serve
    and count the batch twice.  Transient failures (429, 500, 503,
    transport drops) never touched the observer and are forgotten so a
    retry re-executes.  Completed entries live in a bounded LRU.
    """

    #: 429 is transient by definition — never replay it.
    _TRANSIENT = frozenset({429})

    @classmethod
    def _cacheable(cls, status: int) -> bool:
        if status in cls._TRANSIENT:
            return False
        return 200 <= status < 500 or status == 504

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._inflight: dict[str, asyncio.Future] = {}
        self._completed: OrderedDict[str, tuple] = OrderedDict()
        self.n_replayed = 0
        self.n_coalesced = 0

    def claim(self, key: str):
        """``("replay", response)`` | ``("await", future)`` | ``("run", future)``.

        ``run`` means the caller owns the execution and must resolve the
        returned future via :meth:`complete` (or :meth:`abandon` on an
        unexpected exit).
        """
        if key in self._completed:
            self._completed.move_to_end(key)
            self.n_replayed += 1
            return "replay", self._completed[key]
        if key in self._inflight:
            self.n_coalesced += 1
            return "await", self._inflight[key]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return "run", future

    def complete(self, key: str, response: tuple) -> None:
        """Resolve ``key``'s in-flight future and maybe store the response."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(response)
        status = response[0]
        if self._cacheable(status):
            self._completed[key] = response
            self._completed.move_to_end(key)
            while len(self._completed) > self.max_entries:
                self._completed.popitem(last=False)

    def abandon(self, key: str) -> None:
        """Release ``key``'s in-flight slot without a response.

        Waiters see :class:`RequestAbandoned` (a normal exception, so a
        waiter can tell "the original died" from its *own*
        cancellation) and the key becomes claimable again.
        """
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(RequestAbandoned(key))
            # Mark retrieved so a waiter-less abandon does not log
            # "exception was never retrieved" at GC time.
            future.exception()

    def stats(self) -> dict:
        return {
            "inflight": len(self._inflight),
            "completed": len(self._completed),
            "n_replayed": self.n_replayed,
            "n_coalesced": self.n_coalesced,
        }


def retry_rng(seed) -> np.random.Generator:
    """The client's jitter stream (seeded ⇒ replayable backoff schedule)."""
    return np.random.default_rng(seed)
