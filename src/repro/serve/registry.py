"""Model registry for the serving daemon.

A :class:`ServedModel` wraps one deployed ensemble with everything the
daemon needs per model: the compiled inference engine, the per-tree
query counters, and — when the label alphabet allows it — a streaming
:class:`~repro.traffic.defenders.OnlineSuppressionDistinguisher` that
folds every served batch into the Table-2 behavioural statistic.  This
is the paper's deployment picture made literal: the owner serves
``predict.all`` traffic, and the judge's verification protocol runs over
exactly the queries the deployment answered.

The observer state is mutated from the daemon's executor threads, so it
is guarded by its own lock; the engine itself is immutable after
compilation (the thread-safe lazy-compile path in
:mod:`repro.trees.compiled` guarantees a single engine per model).

Resilience (PR 9): each served model carries a
:class:`~repro.serve.resilience.FailureBudget` — repeated engine
failures quarantine *that model* (503 + ``Retry-After``) instead of
taking the daemon down — and the registry supports CRC-verified hot
reloads: :meth:`ModelRegistry.reload` fully loads and integrity-checks
the new artefact *before* atomically swapping it in, so a corrupt or
half-written file can never replace a serving engine.  Both the
registry and its models accept an explicit ``fault_injector=`` hook
(:class:`repro.faults.FaultInjector`); the production default is
``None`` — no injector, no overhead.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from .._validation import check_X
from ..attacks.detection import DetectionResult
from ..ensemble.voting import majority_vote
from ..exceptions import SerializationError, ValidationError
from ..traffic.defenders import OnlineSuppressionDistinguisher
from .resilience import FailureBudget

__all__ = ["ModelRegistry", "ServedModel"]

#: The label alphabet the streaming observer understands (the paper's
#: binary classification setting).  Models over other alphabets are
#: served without an observer: predict/predict_all still work, but the
#: judge-facing traffic statistic is unavailable.
_OBSERVER_CLASSES = np.array([-1, 1], dtype=np.int64)


class ServedModel:
    """One deployed model: compiled engine, counters, traffic observer."""

    def __init__(
        self,
        name: str,
        model,
        *,
        source: str | None = None,
        alpha: float = 0.05,
        fault_injector=None,
        max_failures: int = 5,
        failure_window: float = 30.0,
        quarantine_seconds: float = 5.0,
    ) -> None:
        if not name or "/" in name:
            raise ValidationError(
                f"model name must be non-empty and slash-free, got {name!r}"
            )
        self.name = name
        self.source = source
        self.alpha = float(alpha)
        self.fault_injector = fault_injector
        self._observer_lock = threading.Lock()
        self.budget = FailureBudget(
            max_failures=max_failures,
            window=failure_window,
            quarantine_seconds=quarantine_seconds,
        )
        self._install(model, source)

    def _install(self, model, source: str | None) -> None:
        """Compile and adopt ``model`` as the served engine.

        Used both at construction and by :meth:`replace_model` (hot
        reload): the observer and counters restart at zero because the
        streamed Table-2 statistic is a property of one engine's
        traffic — mixing two engines' answers would bias the verdict.
        """
        # A WatermarkedModel exposes its forest as ``.ensemble``; bare
        # ensembles are served as-is.
        ensemble = getattr(model, "ensemble", model)
        compile_to_engine = getattr(ensemble, "compile", None)
        if not callable(compile_to_engine):
            raise ValidationError(
                f"model {self.name!r} has no compile(); cannot serve it"
            )
        engine = compile_to_engine()
        observer = None
        if engine.classes is not None and np.array_equal(
            np.sort(np.asarray(engine.classes)), _OBSERVER_CLASSES
        ):
            # Uncalibrated zeros baseline: the streaming *statistic*
            # (rates / detection_result) is exact regardless; only the
            # sequential alarm needs a benign baseline, so its verdict
            # is reported iff ``calibrated``.
            observer = OnlineSuppressionDistinguisher(
                baseline_rates=np.zeros(engine.n_trees), alpha=self.alpha
            )
        with self._observer_lock:
            self.model = model
            self.ensemble = ensemble
            self.engine = engine
            self.source = source
            self.n_features = (
                int(getattr(ensemble, "n_features_in_", 0)) or None
            )
            self.observer = observer
            self.calibrated = False
            self.n_queries = 0
            self.n_batches = 0

    def replace_model(self, model, source: str | None = None) -> None:
        """Atomically swap in a new (already loaded and verified) model."""
        self._install(model, source)

    # -- traffic --------------------------------------------------------

    def serve_batch(self, X: np.ndarray) -> np.ndarray:
        """Answer one fused per-tree query batch, observer watching.

        This is the batcher's runner: it executes on daemon executor
        threads, so the observer fold and counters sit behind a lock.
        The fault hook fires *before* the engine call and the observer
        fold: an injected failure means the batch was never served, so
        it must never be counted.
        """
        if self.fault_injector is not None:
            self.fault_injector.fire("engine.call")
        engine = self.engine  # one read: a concurrent reload swaps atomically
        y_all = engine.predict_all(X)
        with self._observer_lock:
            if self.observer is not None and engine is self.engine:
                self.observer.observe(X, y_all)
            self.n_queries += X.shape[0]
            self.n_batches += 1
        return y_all

    def labels(self, y_all: np.ndarray) -> np.ndarray:
        """Majority-vote labels for a per-tree prediction matrix."""
        if self.engine.classes is None:
            raise ValidationError(
                f"model {self.name!r} exposes no class labels "
                "(boosted stage values); use predict_all"
            )
        return majority_vote(y_all, self.engine.classes)

    def calibrate(self, X_reference) -> None:
        """Install a benign-traffic baseline so the alarm can fire."""
        X_reference = check_X(X_reference, name="X_reference")
        observer = OnlineSuppressionDistinguisher.calibrate(
            self.engine, X_reference, alpha=self.alpha
        )
        with self._observer_lock:
            self.observer = observer
            self.calibrated = True

    def traffic_summary(self) -> dict:
        """Observer standing over everything served so far (JSON-safe)."""
        with self._observer_lock:
            summary: dict = {
                "n_queries": int(self.n_queries),
                "n_batches": int(self.n_batches),
                "observer": self.observer.name if self.observer else None,
                "calibrated": bool(self.calibrated),
            }
            if self.observer is not None and self.n_queries > 0:
                summary["rates"] = self.observer.rates().tolist()
            if self.calibrated:
                summary["alarm"] = self.observer.verdict().to_dict()
        return summary

    def detection(self, true_bits, strategy: str = "bands") -> DetectionResult:
        """Table-2 detection over the served traffic (judge protocol)."""
        if self.observer is None:
            raise ValidationError(
                f"model {self.name!r} has no traffic observer "
                "(non-binary label alphabet)"
            )
        with self._observer_lock:
            if self.n_queries == 0:
                raise ValidationError(
                    f"model {self.name!r} has served no traffic yet"
                )
            return self.observer.detection_result(true_bits, strategy)

    # -- description ----------------------------------------------------

    def health_state(self) -> str:
        """``healthy`` / ``degraded`` / ``quarantined`` right now."""
        return self.budget.state()

    def info(self) -> dict:
        """Registry-listing entry (JSON-safe)."""
        return {
            "name": self.name,
            "n_trees": int(self.engine.n_trees),
            "n_features": self.n_features,
            "classes": (
                None
                if self.engine.classes is None
                else [int(c) for c in self.engine.classes]
            ),
            "watermarked": self.model is not self.ensemble,
            "source": self.source,
            "n_queries": int(self.n_queries),
            "observer": self.observer.name if self.observer else None,
            "calibrated": bool(self.calibrated),
            "health": self.health_state(),
        }

    def describe(self) -> str:
        """One-line human description for startup logs."""
        kind = "watermarked" if self.model is not self.ensemble else "plain"
        origin = f" from {self.source}" if self.source else ""
        return (
            f"{kind} ensemble, {self.engine.n_trees} trees, "
            f"{self.n_features or '?'} features{origin}"
        )


class ModelRegistry:
    """Named collection of :class:`ServedModel`\\ s hosted by one daemon.

    ``fault_injector`` (default ``None``: production, zero overhead)
    and the failure-budget parameters are inherited by every model the
    registry hosts, unless overridden per ``add``/``load`` call.
    """

    def __init__(
        self,
        *,
        fault_injector=None,
        max_failures: int = 5,
        failure_window: float = 30.0,
        quarantine_seconds: float = 5.0,
    ) -> None:
        self._models: dict[str, ServedModel] = {}
        self.fault_injector = fault_injector
        self._budget_defaults = {
            "max_failures": max_failures,
            "failure_window": failure_window,
            "quarantine_seconds": quarantine_seconds,
        }

    def add(self, name: str, model, *, source: str | None = None,
            alpha: float = 0.05, **budget) -> ServedModel:
        """Register an in-memory model under ``name``."""
        if name in self._models:
            raise ValidationError(f"model {name!r} is already registered")
        served = ServedModel(
            name,
            model,
            source=source,
            alpha=alpha,
            fault_injector=self.fault_injector,
            **{**self._budget_defaults, **budget},
        )
        self._models[name] = served
        return served

    def _load_model(self, path):
        """Load + integrity-check one artefact (fault hooks armed)."""
        from ..persistence import load as load_model

        path = Path(path)
        if self.fault_injector is not None:
            self.fault_injector.fire("registry.load")
            decision = self.fault_injector.decide("artefact.corrupt")
            if decision is not None:
                # Serve a bit-flipped copy of the artefact: the loader's
                # CRC check below must refuse it, proving integrity
                # checking guards the swap.
                from ..faults.injector import corrupted_copy

                path = corrupted_copy(path, decision)
        # Buffered load: every payload byte passes its section CRC (the
        # mmap fast path skips payload CRCs, which is the wrong trade
        # for an artefact about to replace a serving engine).
        return load_model(path)

    def load(self, name: str, path, *, alpha: float = 0.05, **budget) -> ServedModel:
        """Load an artefact and register it under ``name``.

        Binary ``.rfbin`` artefacts are mapped zero-copy
        (``mmap_mode="r"``): the daemon serves straight from the
        file-backed node tables and worker processes share one page
        cache.  Formats that cannot map fall back to a normal load.
        """
        from ..persistence import load as load_model

        path = Path(path)
        if self.fault_injector is not None:
            self.fault_injector.fire("registry.load")
        model = load_model(path, mmap_mode="r")
        return self.add(name, model, source=str(path), alpha=alpha, **budget)

    def reload(self, name: str, path) -> ServedModel:
        """Hot-swap ``name``'s engine from a freshly verified artefact.

        The new artefact is fully loaded — with payload CRC
        verification for the binary format — *before* the served model
        is touched; any failure (missing file, corrupt bytes, injected
        fault) leaves the old engine serving untouched.
        """
        served = self.get(name)
        path = Path(path)
        try:
            model = self._load_model(path)
        except OSError as exc:
            raise SerializationError(
                f"cannot reload {name!r} from {path}: {exc}"
            ) from exc
        served.replace_model(model, source=str(path))
        return served

    def get(self, name: str) -> ServedModel:
        try:
            return self._models[name]
        except KeyError:
            raise ValidationError(
                f"no model named {name!r}; hosting: {sorted(self._models)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self):
        return iter(self._models.values())

    def __contains__(self, name: str) -> bool:
        return name in self._models
