"""Blocking client for the serving daemon, with failure-aware plumbing.

Built on :mod:`http.client` (stdlib, keep-alive reused connection) so
tests, CI smoke scripts and the serving benchmarks can talk to the
daemon without any HTTP dependency.  The transport layer is hardened
for the chaos battery's world:

- every connection carries a finite socket timeout (a hung daemon can
  no longer block the client forever); timeouts surface as the typed
  :class:`ServeTimeout`, dropped/refused connections as
  :class:`ServeConnectionError` — both :class:`~repro.exceptions.ReproError`\\ s;
- an optional :class:`~repro.serve.resilience.RetryPolicy` retries
  transient failures (transport errors, 429, 5xx) with seeded
  full-jitter backoff honouring ``Retry-After``, under a wall-clock
  deadline budget;
- retried POSTs carry an ``Idempotency-Key`` header, so the daemon
  serves each *logical* request exactly once no matter how many wire
  attempts it took — the streamed suppression statistic never counts a
  retry twice;
- an optional :class:`~repro.serve.resilience.CircuitBreaker` fails
  fast (typed :class:`~repro.serve.resilience.CircuitOpen`) while the
  daemon is known-bad, with half-open probing.

Without a retry policy the client behaves exactly as before: one
attempt, typed errors.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import uuid

from .._jsonsafe import dumps
from ..exceptions import ReproError
from .resilience import CircuitBreaker, RetryPolicy, retry_rng

__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServeConnectionError",
    "ServeTimeout",
    "ServingUnavailable",
]


class ServeClientError(ReproError):
    """The daemon answered with a non-success status."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.payload = payload


class ServingUnavailable(ServeClientError):
    """429 backpressure: retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: dict, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = float(retry_after)


class ServeConnectionError(ReproError, ConnectionError):
    """The connection to the daemon was refused, reset or dropped."""


class ServeTimeout(ServeConnectionError, TimeoutError):
    """The daemon did not answer within the socket timeout."""


#: Statuses a retry policy treats as transient.  4xx responses (other
#: than 429) are definitive — retrying a malformed request cannot help.
_RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class ServeClient:
    """One persistent connection to a :class:`~repro.serve.ServingDaemon`.

    ``timeout`` is the per-request socket timeout (finite by default —
    pass ``None`` explicitly to wait forever, at your own risk).
    ``retry`` enables the resilient path; ``retry_seed`` makes its
    jitter schedule replayable; ``breaker`` adds client-side
    fail-fast.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        *,
        retry: RetryPolicy | None = None,
        retry_seed=None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._rng = retry_rng(retry_seed)
        self._conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
        # Telemetry the chaos battery and benchmark report on.
        self.n_attempts = 0
        self.n_retries = 0

    # -- transport ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict, dict]:
        """One round trip; returns ``(status, body, headers)`` raw.

        ``timeout`` overrides the connection's socket timeout for this
        request only.  Transport failures close the (keep-alive)
        connection so the next attempt reconnects cleanly, and surface
        as :class:`ServeTimeout` / :class:`ServeConnectionError`.
        """
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = dumps(payload)
            send_headers.setdefault("Content-Type", "application/json")
        previous_timeout = self._conn.timeout
        if timeout is not None:
            self._conn.timeout = timeout
            if self._conn.sock is not None:
                self._conn.sock.settimeout(timeout)
        self.n_attempts += 1
        try:
            self._conn.request(method, path, body=body, headers=send_headers)
            response = self._conn.getresponse()
            raw = response.read()
        except TimeoutError as exc:  # socket.timeout is an alias since 3.10
            self._conn.close()
            raise ServeTimeout(
                f"{method} {path} timed out after "
                f"{timeout if timeout is not None else self.timeout}s"
            ) from exc
        except (ConnectionError, http.client.HTTPException, socket.error) as exc:
            # RemoteDisconnected subclasses both branches; either way the
            # keep-alive socket is poisoned — drop it and report typed.
            self._conn.close()
            raise ServeConnectionError(
                f"{method} {path} failed mid-flight: {exc!r}"
            ) from exc
        finally:
            if timeout is not None:
                self._conn.timeout = previous_timeout
                if self._conn.sock is not None:
                    self._conn.sock.settimeout(previous_timeout)
        data = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, data, dict(response.getheaders())

    def _raise_for_status(self, status: int, data: dict, headers: dict) -> dict:
        if status == 429:
            retry_after = float(headers.get("Retry-After", 1))
            raise ServingUnavailable(status, data, retry_after)
        if status >= 400:
            raise ServeClientError(status, data)
        return data

    def _checked(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotent: bool = False,
        timeout: float | None = None,
    ) -> dict:
        if self.retry is None:
            if self.breaker is not None:
                self.breaker.allow()
            try:
                result = self._raise_for_status(
                    *self.request(method, path, payload, timeout=timeout)
                )
            except (ServeConnectionError, ServeClientError) as exc:
                if self.breaker is not None:
                    status = getattr(exc, "status", None)
                    if status is None or status >= 500:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return result
        return self._resilient(
            method, path, payload, idempotent=idempotent, timeout=timeout
        )

    def _resilient(
        self,
        method: str,
        path: str,
        payload: dict | None,
        *,
        idempotent: bool,
        timeout: float | None,
    ) -> dict:
        """The retry loop: backoff, Retry-After, idempotency, breaker."""
        policy = self.retry
        headers = {}
        if idempotent:
            # One key per *logical* operation: every wire attempt below
            # shares it, so the daemon deduplicates retries server-side.
            headers["Idempotency-Key"] = uuid.uuid4().hex
        started = time.monotonic()
        last_error: ReproError | None = None
        for attempt in range(policy.max_attempts):
            if self.breaker is not None:
                self.breaker.allow()
            retry_after = 0.0
            try:
                status, data, resp_headers = self.request(
                    method, path, payload, headers=headers, timeout=timeout
                )
            except ServeConnectionError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_error = exc
            else:
                if status not in _RETRYABLE_STATUSES:
                    if self.breaker is not None:
                        self.breaker.record_success()
                    return self._raise_for_status(status, data, resp_headers)
                if self.breaker is not None:
                    if status >= 500:
                        self.breaker.record_failure()
                    else:  # 429 is load, not damage
                        self.breaker.record_success()
                retry_after = float(resp_headers.get("Retry-After", 0.0))
                try:
                    self._raise_for_status(status, data, resp_headers)
                except ServeClientError as exc:
                    last_error = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff(attempt + 1, self._rng, retry_after)
            if policy.deadline is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay >= policy.deadline:
                    break  # the budget cannot absorb another attempt
            if delay > 0:
                time.sleep(delay)
            self.n_retries += 1
        assert last_error is not None
        raise last_error

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def models(self) -> list[dict]:
        return self._checked("GET", "/v1/models")["models"]

    def predict(self, name: str, rows, *, timeout: float | None = None) -> dict:
        return self._checked(
            "POST",
            f"/v1/models/{name}/predict",
            {"rows": _listify(rows)},
            idempotent=True,
            timeout=timeout,
        )

    def predict_all(self, name: str, rows, *, timeout: float | None = None) -> dict:
        return self._checked(
            "POST",
            f"/v1/models/{name}/predict_all",
            {"rows": _listify(rows)},
            idempotent=True,
            timeout=timeout,
        )

    def verify(
        self,
        name: str,
        signature: str,
        *,
        strategy: str = "bands",
        mode: str = "strict",
        trigger_rows=None,
        trigger_labels=None,
        timeout: float | None = None,
    ) -> dict:
        payload: dict = {"signature": signature, "strategy": strategy, "mode": mode}
        if trigger_rows is not None:
            payload["trigger_rows"] = _listify(trigger_rows)
            payload["trigger_labels"] = _listify(trigger_labels)
        return self._checked(
            "POST",
            f"/v1/models/{name}/verify",
            payload,
            idempotent=True,
            timeout=timeout,
        )

    def calibrate(self, name: str, rows) -> dict:
        return self._checked(
            "POST",
            f"/v1/models/{name}/calibrate",
            {"rows": _listify(rows)},
            idempotent=True,
        )

    def reload(self, name: str, path) -> dict:
        """Hot-swap ``name`` to the artefact at ``path`` (admin surface)."""
        return self._checked(
            "POST", "/admin/reload", {"model": name, "path": str(path)}
        )


def _listify(value):
    """numpy arrays → nested lists; anything else passes through."""
    tolist = getattr(value, "tolist", None)
    return tolist() if callable(tolist) else value
