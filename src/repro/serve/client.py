"""Minimal blocking client for the serving daemon.

Built on :mod:`http.client` (stdlib, keep-alive reused connection) so
tests, CI smoke scripts and the serving benchmark can talk to the
daemon without any HTTP dependency.  Library consumers integrating a
real service should use their own client stack; this one exists so the
repo is self-contained.
"""

from __future__ import annotations

import http.client
import json

from .._jsonsafe import dumps
from ..exceptions import ReproError

__all__ = ["ServeClient", "ServingUnavailable", "ServeClientError"]


class ServeClientError(ReproError):
    """The daemon answered with a non-success status."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.payload = payload


class ServingUnavailable(ServeClientError):
    """429 backpressure: retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: dict, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = float(retry_after)


class ServeClient:
    """One persistent connection to a :class:`~repro.serve.ServingDaemon`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self._conn = http.client.HTTPConnection(host, int(port), timeout=timeout)

    # -- transport ------------------------------------------------------

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict, dict]:
        """One round trip; returns ``(status, body, headers)`` raw."""
        body = None
        headers = {}
        if payload is not None:
            body = dumps(payload)
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, data, dict(response.getheaders())

    def _checked(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, data, headers = self.request(method, path, payload)
        if status == 429:
            retry_after = float(headers.get("Retry-After", 1))
            raise ServingUnavailable(status, data, retry_after)
        if status >= 400:
            raise ServeClientError(status, data)
        return data

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def models(self) -> list[dict]:
        return self._checked("GET", "/v1/models")["models"]

    def predict(self, name: str, rows) -> dict:
        return self._checked(
            "POST", f"/v1/models/{name}/predict", {"rows": _listify(rows)}
        )

    def predict_all(self, name: str, rows) -> dict:
        return self._checked(
            "POST", f"/v1/models/{name}/predict_all", {"rows": _listify(rows)}
        )

    def verify(
        self,
        name: str,
        signature: str,
        *,
        strategy: str = "bands",
        mode: str = "strict",
        trigger_rows=None,
        trigger_labels=None,
    ) -> dict:
        payload: dict = {"signature": signature, "strategy": strategy, "mode": mode}
        if trigger_rows is not None:
            payload["trigger_rows"] = _listify(trigger_rows)
            payload["trigger_labels"] = _listify(trigger_labels)
        return self._checked("POST", f"/v1/models/{name}/verify", payload)

    def calibrate(self, name: str, rows) -> dict:
        return self._checked(
            "POST", f"/v1/models/{name}/calibrate", {"rows": _listify(rows)}
        )


def _listify(value):
    """numpy arrays → nested lists; anything else passes through."""
    tolist = getattr(value, "tolist", None)
    return tolist() if callable(tolist) else value
