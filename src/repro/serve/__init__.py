"""Verification-as-a-service: serve watermarked ensembles over HTTP.

The paper's deployment made concrete — an asyncio daemon hosting a
registry of models behind the per-tree ``predict.all`` interface, with
request micro-batching onto the compiled engine, per-model backpressure,
a streaming Table-2 observer over everything served, and a judge-facing
``/verify`` endpoint.  See :mod:`repro.serve.http` for the wire surface
and ``docs/serving.md`` for the deployment-vs-paper mapping.

The resilience layer (PR 9) lives in :mod:`repro.serve.resilience`:
client-side retry/backoff and circuit breaking, server-side failure
budgets and idempotency dedup, with typed errors throughout.  See
``docs/resilience.md`` for the failure-mode contract and
:mod:`repro.faults` for the seeded fault-injection harness that tests
it.
"""

from .batching import Backpressure, MicroBatcher
from .client import (
    ServeClient,
    ServeClientError,
    ServeConnectionError,
    ServeTimeout,
    ServingUnavailable,
)
from .http import HTTPError, ServingDaemon
from .registry import ModelRegistry, ServedModel
from .resilience import (
    CircuitBreaker,
    CircuitOpen,
    FailureBudget,
    IdempotencyCache,
    RequestAbandoned,
    RetryPolicy,
)
from .testing import BackgroundServer

__all__ = [
    "Backpressure",
    "BackgroundServer",
    "CircuitBreaker",
    "CircuitOpen",
    "FailureBudget",
    "HTTPError",
    "IdempotencyCache",
    "MicroBatcher",
    "ModelRegistry",
    "RequestAbandoned",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ServeConnectionError",
    "ServeTimeout",
    "ServedModel",
    "ServingDaemon",
    "ServingUnavailable",
]
