"""Verification-as-a-service: serve watermarked ensembles over HTTP.

The paper's deployment made concrete — an asyncio daemon hosting a
registry of models behind the per-tree ``predict.all`` interface, with
request micro-batching onto the compiled engine, per-model backpressure,
a streaming Table-2 observer over everything served, and a judge-facing
``/verify`` endpoint.  See :mod:`repro.serve.http` for the wire surface
and ``docs/serving.md`` for the deployment-vs-paper mapping.
"""

from .batching import Backpressure, MicroBatcher
from .client import ServeClient, ServeClientError, ServingUnavailable
from .http import HTTPError, ServingDaemon
from .registry import ModelRegistry, ServedModel
from .testing import BackgroundServer

__all__ = [
    "Backpressure",
    "BackgroundServer",
    "HTTPError",
    "MicroBatcher",
    "ModelRegistry",
    "ServeClient",
    "ServeClientError",
    "ServedModel",
    "ServingDaemon",
    "ServingUnavailable",
]
