"""In-process daemon harness for tests and benchmarks.

:class:`BackgroundServer` runs a :class:`~repro.serve.ServingDaemon` on
a private event-loop thread and tears it down through the same graceful
drain the CLI uses on SIGTERM — so every test exercises the production
shutdown path, and benchmark clients can drive the daemon from plain
blocking code.
"""

from __future__ import annotations

import asyncio
import threading

from ..exceptions import ReproError
from .client import ServeClient
from .http import ServingDaemon
from .registry import ModelRegistry

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """Context manager hosting a daemon on an ephemeral port.

    ::

        registry = ModelRegistry()
        registry.add("demo", model)
        with BackgroundServer(registry) as server:
            client = server.client()
            client.predict("demo", rows)
    """

    def __init__(self, registry: ModelRegistry, **daemon_kwargs) -> None:
        daemon_kwargs.setdefault("port", 0)
        self._registry = registry
        self._daemon_kwargs = daemon_kwargs
        self.daemon: ServingDaemon | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ------------------------------------------------------

    async def _main(self) -> None:
        try:
            self.daemon = ServingDaemon(self._registry, **self._daemon_kwargs)
            await self.daemon.start()
            self.host, self.port = self.daemon.address
            self._stop = asyncio.Event()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            self._startup_error = exc
            self._started.set()
            raise
        self._started.set()
        await self._stop.wait()
        await self.daemon.drain()

    def __enter__(self) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._main())
            finally:
                self._loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ReproError("serving daemon did not start within 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    # -- conveniences ---------------------------------------------------

    def client(self, timeout: float = 30.0, **kwargs) -> ServeClient:
        """A connected client; kwargs reach :class:`ServeClient` (e.g.
        ``retry=``, ``retry_seed=``, ``breaker=`` for resilient runs)."""
        assert self.host is not None and self.port is not None
        return ServeClient(self.host, self.port, timeout=timeout, **kwargs)

    def run_on_loop(self, coro_factory):
        """Run ``coro_factory()`` on the daemon's loop, blocking for it."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro_factory(), self._loop)
        return future.result()
