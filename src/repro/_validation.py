"""Input validation helpers shared across the library.

These helpers normalise user input to canonical numpy representations and
raise :class:`repro.exceptions.ValidationError` with actionable messages.
They are deliberately strict: the watermarking protocol manipulates models
whose exact behaviour matters legally, so silent coercion is avoided.
"""

from __future__ import annotations

import numbers

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_X",
    "check_X_y",
    "check_sample_weight",
    "check_random_state",
    "check_binary_labels",
    "spawn_seed_sequences",
]


def check_X(X, *, name: str = "X") -> np.ndarray:
    """Validate a feature matrix and return it as a C-contiguous float64 array.

    Parameters
    ----------
    X:
        Anything convertible to a 2-D numeric array of shape
        ``(n_samples, n_features)``.
    name:
        Name used in error messages.
    """
    try:
        arr = np.asarray(X, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be numeric, got {type(X).__name__}") from exc
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one sample")
    if arr.shape[1] == 0:
        raise ValidationError(f"{name} must contain at least one feature")
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix together with its label vector."""
    arr_x = check_X(X)
    arr_y = np.asarray(y)
    if arr_y.ndim != 1:
        raise ValidationError(f"y must be 1-dimensional, got shape {arr_y.shape}")
    if arr_y.shape[0] != arr_x.shape[0]:
        raise ValidationError(
            f"X and y disagree on the number of samples: {arr_x.shape[0]} != {arr_y.shape[0]}"
        )
    return arr_x, arr_y


def check_sample_weight(sample_weight, n_samples: int) -> np.ndarray:
    """Validate sample weights, defaulting to uniform weights of 1.0."""
    if sample_weight is None:
        return np.ones(n_samples, dtype=np.float64)
    arr = np.asarray(sample_weight, dtype=np.float64)
    if arr.shape != (n_samples,):
        raise ValidationError(
            f"sample_weight must have shape ({n_samples},), got {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValidationError("sample_weight contains NaN or infinite values")
    if (arr < 0).any():
        raise ValidationError("sample_weight must be non-negative")
    if arr.sum() <= 0:
        raise ValidationError("sample_weight must have positive total mass")
    return arr


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if seed is None:
        # repro: allow[RPR001] seed=None is the caller explicitly requesting fresh entropy; this funnel is the one sanctioned place to mint it
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"random_state must be None, an int or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_seed_sequences(random_state, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from ``random_state``.

    This is the determinism backbone of parallel training: every tree
    slot receives its own :class:`numpy.random.SeedSequence` up front,
    so its random stream is independent of fitting order (serial,
    process pool, or selective refit) while remaining a pure function of
    the caller's seed.

    Accepts the same inputs as :func:`check_random_state`, plus a
    :class:`numpy.random.SeedSequence` used as the parent directly.  A
    shared :class:`~numpy.random.Generator` contributes a single draw of
    entropy (advancing it once), keeping pipelines that thread one
    generator through many components reproducible.
    """
    if n < 0:
        raise ValidationError(f"cannot spawn {n} seed sequences")
    if isinstance(random_state, np.random.SeedSequence):
        parent = random_state
    elif random_state is None:
        parent = np.random.SeedSequence()
    elif isinstance(random_state, numbers.Integral):
        parent = np.random.SeedSequence(int(random_state))
    elif isinstance(random_state, np.random.Generator):
        parent = np.random.SeedSequence(int(random_state.integers(2**63)))
    else:
        raise ValidationError(
            f"random_state must be None, an int, a numpy Generator or a "
            f"SeedSequence, got {type(random_state).__name__}"
        )
    return parent.spawn(n)


def check_binary_labels(y) -> np.ndarray:
    """Validate that labels form a binary {-1, +1} problem.

    The watermarking scheme of the paper is defined for binary
    classification with labels ``-1`` and ``+1`` (multi-class tasks are
    handled by decomposition into binary ones, see
    :mod:`repro.ensemble.multiclass`).
    """
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValidationError(f"y must be 1-dimensional, got shape {arr.shape}")
    labels = set(np.unique(arr).tolist())
    if not labels <= {-1, 1}:
        raise ValidationError(
            f"binary labels must be in {{-1, +1}}, got {sorted(labels)}"
        )
    if len(labels) < 2:
        raise ValidationError("y must contain both classes -1 and +1")
    return arr.astype(np.int64)
