"""Crash-safe artefact writes: temp file + fsync + atomic rename.

Every exporter funnels its bytes through :func:`atomic_write`.  The
contract: at any instant — including mid-write power loss or a crashed
process — the destination path holds either the complete previous
artefact or the complete new one, never a truncated hybrid.  This is
what makes the daemon's hot-reload story sound end to end: the registry
CRC-verifies what it loads, and the writer guarantees there is never a
half-written file at the published path to verify in the first place.

Mechanics (the classic POSIX recipe):

1. write into a ``NamedTemporaryFile``-style sibling in the *same
   directory* (``os.replace`` must not cross filesystems);
2. ``flush`` + ``os.fsync`` so the bytes are durable before the rename
   publishes them;
3. ``os.replace`` — atomic on POSIX and Windows — swings the name;
4. on any failure the temp file is unlinked and the destination is left
   exactly as it was.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write"]


@contextlib.contextmanager
def atomic_write(path, mode: str = "wb"):
    """Context manager yielding a file handle that lands atomically.

    ``mode`` must be a write mode (``"wb"`` or ``"w"``).  Text mode
    writes UTF-8.  The handle supports everything a normal ``open``
    handle does — ``np.savez``, ``json.dump`` and manual ``write``
    calls all work unchanged.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_write needs a write mode, got {mode!r}")
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    encoding = None if "b" in mode else "utf-8"
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
