"""Model persistence — a registry of formats behind two functions.

:func:`save` writes any supported model (forest, boosted ensemble,
watermarked model, secret) in an explicitly named format or the one
implied by the path's extension; :func:`load` dispatches on the file's
*content* (its magic bytes), so artefacts load correctly regardless of
how they were named.  See :mod:`repro.persistence.exporters` for the
built-in formats and :doc:`docs/persistence` for the ``.rfbin`` spec.

The dict-level helpers from :mod:`.serialize` remain exported for code
that manipulates artefacts structurally (tests, audits, the CLI).
"""

from .exporters import (
    Exporter,
    available_formats,
    detect_format,
    format_for_path,
    get_exporter,
    register,
)
from .serialize import (
    boosted_from_dict,
    boosted_to_dict,
    compiled_from_dict,
    compiled_to_dict,
    forest_from_dict,
    forest_to_dict,
    load_json,
    node_from_dict,
    node_to_dict,
    regression_node_from_dict,
    regression_node_to_dict,
    save_json,
    secret_from_dict,
    secret_to_dict,
    watermarked_from_dict,
    watermarked_to_dict,
)

__all__ = [
    "save",
    "load",
    "Exporter",
    "register",
    "get_exporter",
    "available_formats",
    "detect_format",
    "format_for_path",
    "boosted_from_dict",
    "boosted_to_dict",
    "compiled_from_dict",
    "compiled_to_dict",
    "forest_from_dict",
    "forest_to_dict",
    "load_json",
    "node_from_dict",
    "node_to_dict",
    "regression_node_from_dict",
    "regression_node_to_dict",
    "save_json",
    "secret_from_dict",
    "secret_to_dict",
    "watermarked_from_dict",
    "watermarked_to_dict",
]


def save(model, path, format: str | None = None, **kwargs) -> None:
    """Write ``model`` to ``path``.

    The format is ``format`` if given, else inferred from the path's
    extension (``.rfbin`` → binary, ``.json`` → json, ``.npz`` →
    sklearn).  Extra keyword arguments go to the exporter (e.g. the
    json exporter's ``include_compiled=True``).
    """
    format_for_path(path, format).save(model, path, **kwargs)


def load(path, format: str | None = None, mmap_mode: str | None = None, **kwargs):
    """Load the model artefact at ``path``.

    With ``format=None`` the format is detected from the file's magic
    bytes.  ``mmap_mode="r"`` asks for a zero-copy memory-mapped load
    where the format supports it (``.rfbin``): the compiled node tables
    stay file-backed and are shared across processes via the page
    cache; formats that cannot map simply parse as usual.
    """
    exporter = get_exporter(format) if format is not None else detect_format(path)
    return exporter.load(path, mmap_mode=mmap_mode, **kwargs)
