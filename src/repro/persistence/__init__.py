"""JSON persistence for models and watermark secrets."""

from .serialize import (
    compiled_from_dict,
    compiled_to_dict,
    forest_from_dict,
    forest_to_dict,
    load_json,
    node_from_dict,
    node_to_dict,
    save_json,
    secret_from_dict,
    secret_to_dict,
)

__all__ = [
    "compiled_from_dict",
    "compiled_to_dict",
    "forest_from_dict",
    "forest_to_dict",
    "load_json",
    "node_from_dict",
    "node_to_dict",
    "save_json",
    "secret_from_dict",
    "secret_to_dict",
]
