"""JSON serialisation of trees, forests and watermark secrets.

Ownership disputes stretch over time: the owner must be able to persist
the watermarked model and — separately and more carefully — the secret
``(signature, trigger set)``, then reload both bit-for-bit for the
verification protocol.  JSON keeps the artefacts inspectable by a court.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.protocol import WatermarkSecret
from .atomic import atomic_write
from ..core.signature import Signature
from ..ensemble.boosting import GradientBoostingClassifier
from ..ensemble.compiled import CompiledEnsemble
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import SerializationError
from ..trees.node import InternalNode, Leaf, TreeNode
from ..trees.regression import RegressionTree, _RegLeaf, _RegNode
from ..trees.tree import DecisionTreeClassifier

__all__ = [
    "node_to_dict",
    "node_from_dict",
    "regression_node_to_dict",
    "regression_node_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "boosted_to_dict",
    "boosted_from_dict",
    "watermarked_to_dict",
    "watermarked_from_dict",
    "compiled_to_dict",
    "compiled_from_dict",
    "secret_to_dict",
    "secret_from_dict",
    "save_json",
    "load_json",
]

FORMAT_VERSION = 1


def node_to_dict(node: TreeNode) -> dict:
    """Serialise a tree node (and its subtree) to nested dicts.

    The traversal is iterative — child dicts are allocated empty and
    filled from an explicit stack — so chain-shaped trees thousands of
    levels deep serialise without touching Python's recursion limit.
    Key insertion order matches the original recursive implementation,
    keeping ``json.dumps`` output byte-identical to pre-existing
    artefacts.
    """
    root: dict = {}
    stack = [(node, root)]
    while stack:
        current, out = stack.pop()
        if current.is_leaf:
            out["kind"] = "leaf"
            out["prediction"] = int(current.prediction)  # type: ignore[union-attr]
            out["class_weights"] = {
                str(k): float(v)
                for k, v in current.class_weights.items()  # type: ignore[union-attr]
            }
        else:
            out["kind"] = "node"
            out["feature"] = int(current.feature)
            out["threshold"] = float(current.threshold)
            out["left"] = {}
            out["right"] = {}
            stack.append((current.right, out["right"]))
            stack.append((current.left, out["left"]))
    return root


def node_from_dict(data: dict) -> TreeNode:
    """Inverse of :func:`node_to_dict` (iterative, deep-tree safe)."""

    def build_shallow(item: dict) -> TreeNode:
        kind = item["kind"]
        if kind == "leaf":
            return Leaf(
                prediction=int(item["prediction"]),
                class_weights={
                    int(k): float(v)
                    for k, v in item.get("class_weights", {}).items()
                },
            )
        if kind == "node":
            # Children are attached by the driver loop below; the
            # placeholders keep the dataclass happy meanwhile.
            item["left"], item["right"]  # noqa: B018 - raise KeyError early
            return InternalNode(
                feature=int(item["feature"]),
                threshold=float(item["threshold"]),
                left=None,  # type: ignore[arg-type]
                right=None,  # type: ignore[arg-type]
            )
        raise SerializationError(f"unknown node kind {item.get('kind')!r}")

    try:
        root = build_shallow(data)
        stack = [(data, root)]
        while stack:
            item, node = stack.pop()
            if node.is_leaf:
                continue
            node.left = build_shallow(item["left"])
            node.right = build_shallow(item["right"])
            stack.append((item["right"], node.right))
            stack.append((item["left"], node.left))
        return root
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(f"malformed tree node data: {exc}") from exc


def regression_node_to_dict(node) -> dict:
    """Serialise a regression-tree node (iterative, deep-tree safe)."""
    root: dict = {}
    stack = [(node, root)]
    while stack:
        current, out = stack.pop()
        if current.is_leaf:
            out["kind"] = "leaf"
            out["value"] = float(current.value)
        else:
            out["kind"] = "node"
            out["feature"] = int(current.feature)
            out["threshold"] = float(current.threshold)
            out["left"] = {}
            out["right"] = {}
            stack.append((current.right, out["right"]))
            stack.append((current.left, out["left"]))
    return root


def regression_node_from_dict(data: dict):
    """Inverse of :func:`regression_node_to_dict`."""

    def build_shallow(item: dict):
        kind = item["kind"]
        if kind == "leaf":
            return _RegLeaf(value=float(item["value"]))
        if kind == "node":
            item["left"], item["right"]  # noqa: B018 - raise KeyError early
            return _RegNode(
                feature=int(item["feature"]),
                threshold=float(item["threshold"]),
                left=None,
                right=None,
            )
        raise SerializationError(f"unknown node kind {item.get('kind')!r}")

    try:
        root = build_shallow(data)
        stack = [(data, root)]
        while stack:
            item, node = stack.pop()
            if node.is_leaf:
                continue
            node.left = build_shallow(item["left"])
            node.right = build_shallow(item["right"])
            stack.append((item["right"], node.right))
            stack.append((item["left"], node.left))
        return root
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(f"malformed regression node data: {exc}") from exc


def compiled_to_dict(engine: CompiledEnsemble) -> dict:
    """Serialise a compiled ensemble node table.

    Leaf thresholds are ``+inf`` by layout convention, which strict JSON
    cannot carry; they are stored as ``null`` and restored on load.  The
    null substitution is vectorised (one ``astype(object)`` pass plus a
    masked assignment) — on 100k-node tables the old per-element Python
    loop dominated serialisation time.
    """
    threshold = np.asarray(engine.threshold, dtype=np.float64)
    threshold_obj = threshold.astype(object)
    threshold_obj[~np.isfinite(threshold)] = None
    data = {
        "format_version": FORMAT_VERSION,
        "roots": engine.roots.tolist(),
        "feature": engine.feature.tolist(),
        "threshold": threshold_obj.tolist(),
        "left": engine.left.tolist(),
        "right": engine.right.tolist(),
        "leaf_value": engine.leaf_value.tolist(),
        "leaf_value_dtype": str(engine.leaf_value.dtype),
        "depth": int(engine.depth),
        "classes": None if engine.classes is None else [int(c) for c in engine.classes],
        "leaf_proba": None if engine.leaf_proba is None else engine.leaf_proba.tolist(),
    }
    # Only engines compiled for export carry leaf weights; the key is
    # omitted otherwise so default artefacts stay byte-identical to the
    # pre-exporter format.
    if engine.leaf_weight is not None:
        data["leaf_weight"] = engine.leaf_weight.tolist()
    return data


def compiled_from_dict(data: dict) -> CompiledEnsemble:
    """Inverse of :func:`compiled_to_dict` — a ready-to-predict engine.

    Structural validation (lengths, bounds, depth, row shapes) lives in
    :meth:`CompiledEnsemble.from_tables`, the shared gatekeeper for all
    externally-sourced node tables.
    """
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        threshold = np.array(
            [np.inf if t is None else float(t) for t in data["threshold"]],
            dtype=np.float64,
        )
        value_dtype = str(data["leaf_value_dtype"])
        if value_dtype not in ("int64", "float64"):
            raise SerializationError(
                f"compiled leaf_value_dtype must be 'int64' or 'float64', "
                f"got {value_dtype!r}"
            )
        return CompiledEnsemble.from_tables(
            {
                "roots": np.array(data["roots"], dtype=np.int64),
                "feature": np.array(data["feature"], dtype=np.int64),
                "threshold": threshold,
                "left": np.array(data["left"], dtype=np.int64),
                "right": np.array(data["right"], dtype=np.int64),
                "leaf_value": np.array(
                    data["leaf_value"], dtype=np.dtype(value_dtype)
                ),
                "depth": int(data["depth"]),
                "classes": data.get("classes"),
                "leaf_proba": data.get("leaf_proba"),
                "leaf_weight": data.get("leaf_weight"),
            }
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed compiled ensemble data: {exc}") from exc


def _check_adopted_engine(
    forest: RandomForestClassifier, engine: CompiledEnsemble
) -> None:
    """Guard against a stale or tampered serialized compiled table.

    The ``trees`` section is the human-auditable source of truth; an
    engine that disagrees with it must never be installed (verification
    in an ownership dispute runs through the engine).  Structural checks
    are exact; behavioural agreement is spot-checked on a fixed probe
    batch, which catches stale/corrupted tables with high probability
    without re-flattening the whole forest.
    """
    from ..trees.node import predict_batch

    if engine.n_trees != len(forest.trees_):
        raise SerializationError(
            f"compiled table has {engine.n_trees} trees but the forest "
            f"has {len(forest.trees_)}"
        )
    if engine.classes is None or not np.array_equal(engine.classes, forest.classes_):
        raise SerializationError(
            "compiled table classes disagree with the forest classes"
        )
    probe = np.random.default_rng(0).standard_normal((8, forest.n_features_in_))
    expected = np.stack([predict_batch(tree.root_, probe) for tree in forest.trees_])
    if not np.array_equal(engine.predict_all(probe), expected):
        raise SerializationError(
            "compiled node table disagrees with the serialized trees on a "
            "probe batch; refusing to adopt it"
        )


def forest_to_dict(
    forest: RandomForestClassifier, include_compiled: bool = False
) -> dict:
    """Serialise a fitted forest (params + trees + feature subspaces).

    With ``include_compiled=True`` the compiled node table rides along
    (compiling first if needed), so a deployment can reload the forest
    ready to serve without paying the flattening cost again.
    """
    if forest.trees_ is None:
        raise SerializationError("cannot serialise an unfitted forest")
    params = forest.get_params()
    # A shared Generator or SeedSequence is not JSON-serialisable and
    # not needed for replay.
    if isinstance(
        params.get("random_state"), (np.random.Generator, np.random.SeedSequence)
    ):
        params["random_state"] = None
    data = {
        "format_version": FORMAT_VERSION,
        "params": params,
        "classes": [int(c) for c in forest.classes_],
        "n_features_in": int(forest.n_features_in_),
        "feature_subsets": [subset.tolist() for subset in forest.feature_subsets_],
        "trees": [node_to_dict(tree.root_) for tree in forest.trees_],
    }
    if include_compiled:
        data["compiled"] = compiled_to_dict(forest.compile())
    return data


def forest_from_dict(data: dict) -> RandomForestClassifier:
    """Inverse of :func:`forest_to_dict` — returns a ready-to-predict forest."""
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        forest = RandomForestClassifier(**data["params"])
        forest.classes_ = np.array(data["classes"], dtype=np.int64)
        forest.n_features_in_ = int(data["n_features_in"])
        forest.feature_subsets_ = [
            np.array(subset, dtype=np.int64) for subset in data["feature_subsets"]
        ]
        trees = []
        for tree_data, subset in zip(data["trees"], forest.feature_subsets_):
            tree = DecisionTreeClassifier(feature_subset=subset)
            tree.root_ = node_from_dict(tree_data)
            tree.classes_ = forest.classes_
            tree.n_features_in_ = forest.n_features_in_
            trees.append(tree)
        forest.trees_ = trees
        if data.get("compiled") is not None:
            engine = compiled_from_dict(data["compiled"])
            _check_adopted_engine(forest, engine)
            forest._adopt_compiled(engine)
        return forest
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed forest data: {exc}") from exc


def boosted_to_dict(model: GradientBoostingClassifier) -> dict:
    """Serialise a fitted gradient-boosted ensemble.

    The ``kind`` discriminator lets format-agnostic loaders dispatch
    between artefact families without guessing from key shapes.
    """
    if model.trees_ is None:
        raise SerializationError("cannot serialise an unfitted ensemble")
    return {
        "format_version": FORMAT_VERSION,
        "kind": "gradient_boosting",
        "params": model.get_params(),
        "init_score": float(model.init_score_),
        "n_features_in": int(model.n_features_in_),
        "trees": [regression_node_to_dict(tree.root_) for tree in model.trees_],
    }


def boosted_from_dict(data: dict) -> GradientBoostingClassifier:
    """Inverse of :func:`boosted_to_dict` — ready-to-predict ensemble."""
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        kind = data.get("kind", "gradient_boosting")
        if kind != "gradient_boosting":
            raise SerializationError(
                f"expected a gradient_boosting artefact, got kind {kind!r}"
            )
        model = GradientBoostingClassifier(**data["params"])
        model.init_score_ = float(data["init_score"])
        model.n_features_in_ = int(data["n_features_in"])
        trees = []
        for tree_data in data["trees"]:
            tree = RegressionTree(
                max_depth=model.max_depth,
                min_samples_leaf=model.min_samples_leaf,
            )
            tree.root_ = regression_node_from_dict(tree_data)
            tree.n_features_in_ = model.n_features_in_
            trees.append(tree)
        model.trees_ = trees
        return model
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed boosted ensemble data: {exc}") from exc


def _report_to_dict(report) -> dict:
    adjusted = None
    if report.adjusted is not None:
        adjusted = {
            "max_depth": int(report.adjusted.max_depth),
            "max_leaf_nodes": int(report.adjusted.max_leaf_nodes),
            "probe_depth_mean": float(report.adjusted.probe_depth_mean),
            "probe_depth_std": float(report.adjusted.probe_depth_std),
            "probe_leaves_mean": float(report.adjusted.probe_leaves_mean),
            "probe_leaves_std": float(report.adjusted.probe_leaves_std),
        }
    return {
        "rounds_t0": int(report.rounds_t0),
        "rounds_t1": int(report.rounds_t1),
        "trigger_weight_t0": float(report.trigger_weight_t0),
        "trigger_weight_t1": float(report.trigger_weight_t1),
        "adjusted": adjusted,
        "base_params": dict(report.base_params),
    }


def _report_from_dict(data: dict):
    from ..core.adjustment import AdjustedHyperParameters
    from ..core.embedding import EmbeddingReport

    adjusted = None
    if data.get("adjusted") is not None:
        adjusted = AdjustedHyperParameters(**data["adjusted"])
    return EmbeddingReport(
        rounds_t0=int(data["rounds_t0"]),
        rounds_t1=int(data["rounds_t1"]),
        trigger_weight_t0=float(data["trigger_weight_t0"]),
        trigger_weight_t1=float(data["trigger_weight_t1"]),
        adjusted=adjusted,
        base_params=dict(data["base_params"]),
    )


def watermarked_to_dict(model, include_compiled: bool = False) -> dict:
    """Serialise a :class:`~repro.core.embedding.WatermarkedModel`.

    The artefact contains the owner's secret (signature + trigger set)
    — treat it like the secret itself.  The binary exporter's audit
    trailer, by contrast, is secrets-free.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "watermarked",
        "ensemble": forest_to_dict(model.ensemble, include_compiled=include_compiled),
        "signature": model.signature.to_string(),
        "trigger": {
            "indices": model.trigger.indices.tolist(),
            "X": model.trigger.X.tolist(),
            "y": [int(v) for v in model.trigger.y],
        },
        "report": _report_to_dict(model.report),
    }


def watermarked_from_dict(data: dict):
    """Inverse of :func:`watermarked_to_dict`."""
    from ..core.embedding import WatermarkedModel
    from ..core.trigger import TriggerSet

    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        kind = data.get("kind", "watermarked")
        if kind != "watermarked":
            raise SerializationError(
                f"expected a watermarked artefact, got kind {kind!r}"
            )
        trigger = TriggerSet(
            indices=np.array(data["trigger"]["indices"], dtype=np.int64),
            X=np.array(data["trigger"]["X"], dtype=np.float64),
            y=np.array(data["trigger"]["y"], dtype=np.int64),
        )
        return WatermarkedModel(
            ensemble=forest_from_dict(data["ensemble"]),
            signature=Signature.from_string(data["signature"]),
            trigger=trigger,
            report=_report_from_dict(data["report"]),
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed watermarked model data: {exc}") from exc


def secret_to_dict(secret: WatermarkSecret) -> dict:
    """Serialise the owner's secret (signature + trigger set)."""
    return {
        "format_version": FORMAT_VERSION,
        "signature": secret.signature.to_string(),
        "trigger_X": secret.trigger_X.tolist(),
        "trigger_y": [int(v) for v in secret.trigger_y],
    }


def secret_from_dict(data: dict) -> WatermarkSecret:
    """Inverse of :func:`secret_to_dict`."""
    try:
        return WatermarkSecret(
            signature=Signature.from_string(data["signature"]),
            trigger_X=np.array(data["trigger_X"], dtype=np.float64),
            trigger_y=np.array(data["trigger_y"], dtype=np.int64),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed secret data: {exc}") from exc


def save_json(data: dict, path) -> None:
    """Write a serialised artefact to disk (crash-safe).

    The JSON is rendered in memory first and published via
    :func:`~repro.persistence.atomic.atomic_write`: a crash mid-write
    leaves the destination holding the previous complete artefact, not
    a truncated one.
    """
    # allow_nan=False: artefacts must be strict RFC 8259 JSON.  The
    # node-table serializers already map non-finite sentinels (the +inf
    # leaf threshold) to null, so a non-finite float here is a bug in
    # the caller, not a representable value.
    text = json.dumps(data, allow_nan=False)
    with atomic_write(path, "w") as fh:
        fh.write(text)


def load_json(path) -> dict:
    """Read a serialised artefact from disk."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
