"""JSON serialisation of trees, forests and watermark secrets.

Ownership disputes stretch over time: the owner must be able to persist
the watermarked model and — separately and more carefully — the secret
``(signature, trigger set)``, then reload both bit-for-bit for the
verification protocol.  JSON keeps the artefacts inspectable by a court.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.protocol import WatermarkSecret
from ..core.signature import Signature
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import SerializationError
from ..trees.node import InternalNode, Leaf, TreeNode
from ..trees.tree import DecisionTreeClassifier

__all__ = [
    "node_to_dict",
    "node_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "secret_to_dict",
    "secret_from_dict",
    "save_json",
    "load_json",
]

FORMAT_VERSION = 1


def node_to_dict(node: TreeNode) -> dict:
    """Recursively serialise a tree node."""
    if node.is_leaf:
        return {
            "kind": "leaf",
            "prediction": int(node.prediction),  # type: ignore[union-attr]
            "class_weights": {str(k): float(v) for k, v in node.class_weights.items()},  # type: ignore[union-attr]
        }
    return {
        "kind": "node",
        "feature": int(node.feature),
        "threshold": float(node.threshold),
        "left": node_to_dict(node.left),
        "right": node_to_dict(node.right),
    }


def node_from_dict(data: dict) -> TreeNode:
    """Inverse of :func:`node_to_dict`."""
    try:
        kind = data["kind"]
        if kind == "leaf":
            return Leaf(
                prediction=int(data["prediction"]),
                class_weights={int(k): float(v) for k, v in data.get("class_weights", {}).items()},
            )
        if kind == "node":
            return InternalNode(
                feature=int(data["feature"]),
                threshold=float(data["threshold"]),
                left=node_from_dict(data["left"]),
                right=node_from_dict(data["right"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed tree node data: {exc}") from exc
    raise SerializationError(f"unknown node kind {data.get('kind')!r}")


def forest_to_dict(forest: RandomForestClassifier) -> dict:
    """Serialise a fitted forest (params + trees + feature subspaces)."""
    if forest.trees_ is None:
        raise SerializationError("cannot serialise an unfitted forest")
    params = forest.get_params()
    # A shared Generator is not serialisable and not needed for replay.
    if isinstance(params.get("random_state"), np.random.Generator):
        params["random_state"] = None
    return {
        "format_version": FORMAT_VERSION,
        "params": params,
        "classes": [int(c) for c in forest.classes_],
        "n_features_in": int(forest.n_features_in_),
        "feature_subsets": [subset.tolist() for subset in forest.feature_subsets_],
        "trees": [node_to_dict(tree.root_) for tree in forest.trees_],
    }


def forest_from_dict(data: dict) -> RandomForestClassifier:
    """Inverse of :func:`forest_to_dict` — returns a ready-to-predict forest."""
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        forest = RandomForestClassifier(**data["params"])
        forest.classes_ = np.array(data["classes"], dtype=np.int64)
        forest.n_features_in_ = int(data["n_features_in"])
        forest.feature_subsets_ = [
            np.array(subset, dtype=np.int64) for subset in data["feature_subsets"]
        ]
        trees = []
        for tree_data, subset in zip(data["trees"], forest.feature_subsets_):
            tree = DecisionTreeClassifier(feature_subset=subset)
            tree.root_ = node_from_dict(tree_data)
            tree.classes_ = forest.classes_
            tree.n_features_in_ = forest.n_features_in_
            trees.append(tree)
        forest.trees_ = trees
        return forest
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed forest data: {exc}") from exc


def secret_to_dict(secret: WatermarkSecret) -> dict:
    """Serialise the owner's secret (signature + trigger set)."""
    return {
        "format_version": FORMAT_VERSION,
        "signature": secret.signature.to_string(),
        "trigger_X": secret.trigger_X.tolist(),
        "trigger_y": [int(v) for v in secret.trigger_y],
    }


def secret_from_dict(data: dict) -> WatermarkSecret:
    """Inverse of :func:`secret_to_dict`."""
    try:
        return WatermarkSecret(
            signature=Signature.from_string(data["signature"]),
            trigger_X=np.array(data["trigger_X"], dtype=np.float64),
            trigger_y=np.array(data["trigger_y"], dtype=np.int64),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed secret data: {exc}") from exc


def save_json(data: dict, path) -> None:
    """Write a serialised artefact to disk."""
    Path(path).write_text(json.dumps(data), encoding="utf-8")


def load_json(path) -> dict:
    """Read a serialised artefact from disk."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
