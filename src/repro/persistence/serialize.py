"""JSON serialisation of trees, forests and watermark secrets.

Ownership disputes stretch over time: the owner must be able to persist
the watermarked model and — separately and more carefully — the secret
``(signature, trigger set)``, then reload both bit-for-bit for the
verification protocol.  JSON keeps the artefacts inspectable by a court.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.protocol import WatermarkSecret
from ..core.signature import Signature
from ..ensemble.compiled import CompiledEnsemble
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import SerializationError
from ..trees.node import InternalNode, Leaf, TreeNode
from ..trees.tree import DecisionTreeClassifier

__all__ = [
    "node_to_dict",
    "node_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "compiled_to_dict",
    "compiled_from_dict",
    "secret_to_dict",
    "secret_from_dict",
    "save_json",
    "load_json",
]

FORMAT_VERSION = 1


def node_to_dict(node: TreeNode) -> dict:
    """Recursively serialise a tree node."""
    if node.is_leaf:
        return {
            "kind": "leaf",
            "prediction": int(node.prediction),  # type: ignore[union-attr]
            "class_weights": {str(k): float(v) for k, v in node.class_weights.items()},  # type: ignore[union-attr]
        }
    return {
        "kind": "node",
        "feature": int(node.feature),
        "threshold": float(node.threshold),
        "left": node_to_dict(node.left),
        "right": node_to_dict(node.right),
    }


def node_from_dict(data: dict) -> TreeNode:
    """Inverse of :func:`node_to_dict`."""
    try:
        kind = data["kind"]
        if kind == "leaf":
            return Leaf(
                prediction=int(data["prediction"]),
                class_weights={int(k): float(v) for k, v in data.get("class_weights", {}).items()},
            )
        if kind == "node":
            return InternalNode(
                feature=int(data["feature"]),
                threshold=float(data["threshold"]),
                left=node_from_dict(data["left"]),
                right=node_from_dict(data["right"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed tree node data: {exc}") from exc
    raise SerializationError(f"unknown node kind {data.get('kind')!r}")


def compiled_to_dict(engine: CompiledEnsemble) -> dict:
    """Serialise a compiled ensemble node table.

    Leaf thresholds are ``+inf`` by layout convention, which strict JSON
    cannot carry; they are stored as ``null`` and restored on load.
    """
    return {
        "format_version": FORMAT_VERSION,
        "roots": engine.roots.tolist(),
        "feature": engine.feature.tolist(),
        "threshold": [
            float(t) if np.isfinite(t) else None for t in engine.threshold
        ],
        "left": engine.left.tolist(),
        "right": engine.right.tolist(),
        "leaf_value": engine.leaf_value.tolist(),
        "leaf_value_dtype": str(engine.leaf_value.dtype),
        "depth": int(engine.depth),
        "classes": None if engine.classes is None else [int(c) for c in engine.classes],
        "leaf_proba": None if engine.leaf_proba is None else engine.leaf_proba.tolist(),
    }


def _table_depth(feature, left, right, roots) -> int:
    """Depth of the deepest internal node reachable from ``roots``.

    Level-synchronous frontier walk over the node arrays; bounded by
    the table size so a (malformed) cyclic table raises instead of
    looping forever.
    """
    frontier = np.unique(roots)
    for depth in range(feature.shape[0] + 1):
        internal = frontier[feature[frontier] >= 0]
        if internal.size == 0:
            return depth
        frontier = np.unique(np.concatenate([left[internal], right[internal]]))
    raise SerializationError("compiled node table contains a cycle")


def compiled_from_dict(data: dict) -> CompiledEnsemble:
    """Inverse of :func:`compiled_to_dict` — a ready-to-predict engine."""
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        threshold = np.array(
            [np.inf if t is None else float(t) for t in data["threshold"]],
            dtype=np.float64,
        )
        feature = np.array(data["feature"], dtype=np.int64)
        left = np.array(data["left"], dtype=np.int64)
        right = np.array(data["right"], dtype=np.int64)
        roots = np.array(data["roots"], dtype=np.int64)
        n_nodes = feature.shape[0]
        arrays_consistent = (
            threshold.shape[0] == n_nodes
            and left.shape[0] == n_nodes
            and right.shape[0] == n_nodes
            and len(data["leaf_value"]) == n_nodes
        )
        if not arrays_consistent:
            raise SerializationError("compiled node arrays disagree on length")
        for name, indices in (("roots", roots), ("left", left), ("right", right)):
            if n_nodes == 0 or indices.min() < 0 or indices.max() >= n_nodes:
                raise SerializationError(
                    f"compiled {name} indices fall outside the node table"
                )
        depth = int(data["depth"])
        actual_depth = _table_depth(feature, left, right, roots)
        if depth != actual_depth:
            raise SerializationError(
                f"compiled depth {depth} disagrees with the node table "
                f"(actual {actual_depth})"
            )
        value_dtype = str(data["leaf_value_dtype"])
        if value_dtype not in ("int64", "float64"):
            raise SerializationError(
                f"compiled leaf_value_dtype must be 'int64' or 'float64', "
                f"got {value_dtype!r}"
            )
        classes = None
        if data.get("classes") is not None:
            classes = np.array(data["classes"], dtype=np.int64)
        leaf_proba = None
        if data.get("leaf_proba") is not None:
            if classes is None:
                raise SerializationError(
                    "compiled leaf_proba requires a classes array"
                )
            leaf_proba = np.array(data["leaf_proba"], dtype=np.float64)
            if leaf_proba.shape != (n_nodes, classes.shape[0]):
                raise SerializationError(
                    f"compiled leaf_proba must have shape "
                    f"({n_nodes}, {classes.shape[0]}), got {leaf_proba.shape}"
                )
        return CompiledEnsemble(
            roots=roots,
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_value=np.array(data["leaf_value"], dtype=np.dtype(value_dtype)),
            depth=depth,
            classes=classes,
            leaf_proba=leaf_proba,
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed compiled ensemble data: {exc}") from exc


def _check_adopted_engine(
    forest: RandomForestClassifier, engine: CompiledEnsemble
) -> None:
    """Guard against a stale or tampered serialized compiled table.

    The ``trees`` section is the human-auditable source of truth; an
    engine that disagrees with it must never be installed (verification
    in an ownership dispute runs through the engine).  Structural checks
    are exact; behavioural agreement is spot-checked on a fixed probe
    batch, which catches stale/corrupted tables with high probability
    without re-flattening the whole forest.
    """
    from ..trees.node import predict_batch

    if engine.n_trees != len(forest.trees_):
        raise SerializationError(
            f"compiled table has {engine.n_trees} trees but the forest "
            f"has {len(forest.trees_)}"
        )
    if engine.classes is None or not np.array_equal(engine.classes, forest.classes_):
        raise SerializationError(
            "compiled table classes disagree with the forest classes"
        )
    probe = np.random.default_rng(0).standard_normal((8, forest.n_features_in_))
    expected = np.stack([predict_batch(tree.root_, probe) for tree in forest.trees_])
    if not np.array_equal(engine.predict_all(probe), expected):
        raise SerializationError(
            "compiled node table disagrees with the serialized trees on a "
            "probe batch; refusing to adopt it"
        )


def forest_to_dict(
    forest: RandomForestClassifier, include_compiled: bool = False
) -> dict:
    """Serialise a fitted forest (params + trees + feature subspaces).

    With ``include_compiled=True`` the compiled node table rides along
    (compiling first if needed), so a deployment can reload the forest
    ready to serve without paying the flattening cost again.
    """
    if forest.trees_ is None:
        raise SerializationError("cannot serialise an unfitted forest")
    params = forest.get_params()
    # A shared Generator or SeedSequence is not JSON-serialisable and
    # not needed for replay.
    if isinstance(
        params.get("random_state"), (np.random.Generator, np.random.SeedSequence)
    ):
        params["random_state"] = None
    data = {
        "format_version": FORMAT_VERSION,
        "params": params,
        "classes": [int(c) for c in forest.classes_],
        "n_features_in": int(forest.n_features_in_),
        "feature_subsets": [subset.tolist() for subset in forest.feature_subsets_],
        "trees": [node_to_dict(tree.root_) for tree in forest.trees_],
    }
    if include_compiled:
        data["compiled"] = compiled_to_dict(forest.compile())
    return data


def forest_from_dict(data: dict) -> RandomForestClassifier:
    """Inverse of :func:`forest_to_dict` — returns a ready-to-predict forest."""
    try:
        if data["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {data['format_version']}"
            )
        forest = RandomForestClassifier(**data["params"])
        forest.classes_ = np.array(data["classes"], dtype=np.int64)
        forest.n_features_in_ = int(data["n_features_in"])
        forest.feature_subsets_ = [
            np.array(subset, dtype=np.int64) for subset in data["feature_subsets"]
        ]
        trees = []
        for tree_data, subset in zip(data["trees"], forest.feature_subsets_):
            tree = DecisionTreeClassifier(feature_subset=subset)
            tree.root_ = node_from_dict(tree_data)
            tree.classes_ = forest.classes_
            tree.n_features_in_ = forest.n_features_in_
            trees.append(tree)
        forest.trees_ = trees
        if data.get("compiled") is not None:
            engine = compiled_from_dict(data["compiled"])
            _check_adopted_engine(forest, engine)
            forest._adopt_compiled(engine)
        return forest
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed forest data: {exc}") from exc


def secret_to_dict(secret: WatermarkSecret) -> dict:
    """Serialise the owner's secret (signature + trigger set)."""
    return {
        "format_version": FORMAT_VERSION,
        "signature": secret.signature.to_string(),
        "trigger_X": secret.trigger_X.tolist(),
        "trigger_y": [int(v) for v in secret.trigger_y],
    }


def secret_from_dict(data: dict) -> WatermarkSecret:
    """Inverse of :func:`secret_to_dict`."""
    try:
        return WatermarkSecret(
            signature=Signature.from_string(data["signature"]),
            trigger_X=np.array(data["trigger_X"], dtype=np.float64),
            trigger_y=np.array(data["trigger_y"], dtype=np.int64),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed secret data: {exc}") from exc


def save_json(data: dict, path) -> None:
    """Write a serialised artefact to disk."""
    Path(path).write_text(json.dumps(data), encoding="utf-8")


def load_json(path) -> dict:
    """Read a serialised artefact from disk."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
