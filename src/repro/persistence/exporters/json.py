"""The JSON escape hatch — inspectable, court-facing, byte-compatible.

This exporter rehomes the original ``serialize.py`` behaviour behind
the registry: artefacts written by pre-exporter versions of the library
load unchanged, and forests saved here are byte-identical to what
``save_json(forest_to_dict(...))`` produced before.  JSON is the format
for audits and ownership disputes — every node of every tree is
human-readable — not for serving (see :mod:`.binary` for that).

Writes go through :func:`~repro.persistence.serialize.save_json`, which
publishes via :func:`~repro.persistence.atomic.atomic_write` — a crash
mid-save leaves the previous complete artefact at the path, never a
truncated one.
"""

from __future__ import annotations

from ...exceptions import SerializationError
from ..serialize import (
    boosted_from_dict,
    boosted_to_dict,
    forest_from_dict,
    forest_to_dict,
    load_json,
    save_json,
    secret_from_dict,
    secret_to_dict,
    watermarked_from_dict,
    watermarked_to_dict,
)
from .base import Exporter, register

__all__ = ["JsonExporter"]


class JsonExporter(Exporter):
    """Nested-dict JSON artefacts (the original persistence format)."""

    name = "json"
    extensions = (".json",)
    magic = b"{"
    supports_mmap = False

    def save(self, model, path, include_compiled: bool = False) -> None:
        from ...core.embedding import WatermarkedModel
        from ...core.protocol import WatermarkSecret
        from ...ensemble.boosting import GradientBoostingClassifier
        from ...ensemble.forest import RandomForestClassifier

        if isinstance(model, WatermarkedModel):
            data = watermarked_to_dict(model, include_compiled=include_compiled)
        elif isinstance(model, RandomForestClassifier):
            data = forest_to_dict(model, include_compiled=include_compiled)
        elif isinstance(model, GradientBoostingClassifier):
            data = boosted_to_dict(model)
        elif isinstance(model, WatermarkSecret):
            data = secret_to_dict(model)
        else:
            raise SerializationError(
                f"the json exporter cannot serialise {type(model).__name__!r}"
            )
        save_json(data, path)

    def load(self, path, mmap_mode: str | None = None):
        # mmap_mode is advisory; JSON always parses.
        data = load_json(path)
        if not isinstance(data, dict):
            raise SerializationError(
                f"{path} does not contain a JSON object artefact"
            )
        kind = data.get("kind")
        if kind == "watermarked":
            return watermarked_from_dict(data)
        if kind == "gradient_boosting":
            return boosted_from_dict(data)
        if kind is not None:
            raise SerializationError(f"unknown artefact kind {kind!r} in {path}")
        if "trees" in data:
            return forest_from_dict(data)
        if "signature" in data:
            return secret_from_dict(data)
        raise SerializationError(
            f"{path} is not a recognised repro JSON artefact "
            "(expected a forest, boosted ensemble, watermarked model or secret)"
        )


register(JsonExporter())
