"""Exporter ABC and the persistence format registry.

Every on-disk model format is an :class:`Exporter`: a named strategy
with a uniform ``save(model, path)`` / ``load(path, mmap_mode=...)``
surface, registered once at import time.  The registry is keyed two
ways — by *name* (explicit ``format="binary"`` arguments, CLI flags)
and by *file magic* (the leading bytes of an artefact), so
``repro.persistence.load`` can dispatch on content without trusting
file extensions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

from ...exceptions import SerializationError

__all__ = [
    "Exporter",
    "register",
    "get_exporter",
    "available_formats",
    "detect_format",
    "format_for_path",
]


class Exporter(ABC):
    """One on-disk model format.

    Class attributes
    ----------------
    name:
        Registry key, e.g. ``"binary"`` — what users pass as ``format=``.
    extensions:
        File extensions (with dot) that default to this format on save.
    magic:
        Leading bytes identifying an artefact of this format; used by
        :func:`detect_format` for content-based dispatch on load.
    supports_mmap:
        Whether ``load(path, mmap_mode="r")`` can map the artefact
        zero-copy instead of parsing it.
    """

    name: str
    extensions: tuple[str, ...] = ()
    magic: bytes = b""
    supports_mmap: bool = False

    @abstractmethod
    def save(self, model, path) -> None:
        """Write ``model`` to ``path`` in this format."""

    @abstractmethod
    def load(self, path, mmap_mode: str | None = None):
        """Load the artefact at ``path``; ``mmap_mode`` is advisory for
        formats that cannot map (they parse as usual)."""


_REGISTRY: dict[str, Exporter] = {}


def register(exporter: Exporter) -> Exporter:
    """Add an exporter to the registry (last registration wins)."""
    _REGISTRY[exporter.name] = exporter
    return exporter


def available_formats() -> list[str]:
    """Registered format names, sorted."""
    return sorted(_REGISTRY)


def get_exporter(name: str) -> Exporter:
    """The registered exporter called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(
            f"unknown persistence format {name!r}; available formats: "
            f"{', '.join(available_formats())}"
        ) from None


def detect_format(path) -> Exporter:
    """The exporter whose magic matches the artefact's leading bytes.

    The longest matching magic wins, so specific signatures beat
    single-byte ones (JSON's ``{``).
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            head = fh.read(16)
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    best = None
    for exporter in _REGISTRY.values():
        if exporter.magic and head.startswith(exporter.magic):
            if best is None or len(exporter.magic) > len(best.magic):
                best = exporter
    if best is None:
        raise SerializationError(
            f"{path} does not start with any known format magic "
            f"(formats: {', '.join(available_formats())})"
        )
    return best


def format_for_path(path, format: str | None = None) -> Exporter:
    """Resolve the exporter to *save* with: explicit name, else extension."""
    if format is not None:
        return get_exporter(format)
    suffix = Path(path).suffix.lower()
    for exporter in _REGISTRY.values():
        if suffix in exporter.extensions:
            return exporter
    raise SerializationError(
        f"cannot infer a persistence format from {str(path)!r}; pass "
        f"format= explicitly (available: {', '.join(available_formats())})"
    )
