"""The ``.rfbin`` zero-copy binary format.

Layout (all integers little-endian on LE hosts; the header records the
byte order and loaders refuse foreign-endian artefacts)::

    [ 64 B  header   ]  magic, format version, byte order, section count,
                        trailer location, CRC32s of table and trailer
    [ 64 B  × N      ]  section records: name, dtype, shape, offset,
                        nbytes, CRC32 of the section payload
    [ payload        ]  the CompiledEnsemble arrays plus bookkeeping
                        sections, each 64-byte aligned and contiguous
    [ JSON trailer   ]  secrets-free audit metadata (kind, params,
                        depth, counts) — greppable without a parser

Because the payload *is* the compiled node table, loading with
``mmap_mode="r"`` maps the file and wraps typed views over it — no
parse, no copy, and N worker processes mapping the same artefact share
one physical copy of the tables in the page cache.  Payload CRCs are
verified on buffered loads (default) and skipped on mmap loads unless
``verify=True`` (verification touches every page, defeating laziness).
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from pathlib import Path

import numpy as np

from ...exceptions import SerializationError
from ..atomic import atomic_write
from ..serialize import FORMAT_VERSION, _report_from_dict, _report_to_dict
from .base import Exporter, register

__all__ = ["BinaryExporter", "MAGIC"]

MAGIC = b"\x93RFBIN\r\n"

# magic, ver_major, ver_minor, byteorder, reserved, n_sections,
# table_offset, trailer_offset, trailer_nbytes, trailer_crc, table_crc
_HEADER = struct.Struct("<8sHHcBHQQQII16x")
assert _HEADER.size == 64

# name, dtype, ndim, shape0, shape1, offset, nbytes, crc
_SECTION = struct.Struct("<12s8sB3xQQQQI4x")
assert _SECTION.size == 64

_VERSION = (1, 0)
_ALIGN = 64

_NATIVE_ORDER = b"<" if sys.byteorder == "little" else b">"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _sanitize_params(params: dict) -> dict:
    """Drop non-JSON-serialisable random state, like ``forest_to_dict``."""
    params = dict(params)
    if isinstance(
        params.get("random_state"), (np.random.Generator, np.random.SeedSequence)
    ):
        params["random_state"] = None
    return params


def _export_engine(model):
    """The model's compiled engine, enriched with leaf weights.

    The leaf-weight section is what makes the binary round trip exact
    (leaf ``class_weights`` dicts rebuild bit-for-bit); engines compiled
    for inference alone don't carry it, so exporting may recompile once.
    A forest restored from ``.rfbin`` already has it — re-export is
    zero-copy.
    """
    from ...ensemble.compiled import compile_forest
    from ...trees.compiled import adopt_compiled

    engine = model.compile()
    if engine.classes is not None and engine.leaf_weight is None:
        engine = compile_forest(model, collect_leaf_weight=True)
        adopt_compiled(model, model._roots_key(), engine)
    return engine


def _model_sections(model) -> tuple[list[tuple[str, np.ndarray]], dict]:
    """``(sections, trailer)`` for any supported model object."""
    from ...core.embedding import WatermarkedModel
    from ...ensemble.boosting import GradientBoostingClassifier
    from ...ensemble.forest import RandomForestClassifier

    if isinstance(model, WatermarkedModel):
        sections, trailer = _forest_sections(model.ensemble)
        trailer["kind"] = "watermarked"
        trailer["report"] = _report_to_dict(model.report)
        sections.append(("trigger_X", np.ascontiguousarray(model.trigger.X, dtype=np.float64)))
        sections.append(("trigger_y", np.ascontiguousarray(model.trigger.y, dtype=np.int64)))
        sections.append(("trigger_idx", np.ascontiguousarray(model.trigger.indices, dtype=np.int64)))
        secret = json.dumps(
            {"signature": model.signature.to_string()}, allow_nan=False
        ).encode("utf-8")
        sections.append(("secret_json", np.frombuffer(secret, dtype=np.uint8)))
        return sections, trailer
    if isinstance(model, RandomForestClassifier):
        return _forest_sections(model)
    if isinstance(model, GradientBoostingClassifier):
        return _boosted_sections(model)
    raise SerializationError(
        f"the binary exporter cannot serialise {type(model).__name__!r} "
        "(supported: forests, boosted ensembles, watermarked models)"
    )


def _table_section_list(tables: dict) -> list[tuple[str, np.ndarray]]:
    sections = []
    for name in ("roots", "feature", "threshold", "left", "right", "leaf_value",
                 "classes", "leaf_proba", "leaf_weight"):
        value = tables.get(name)
        if value is not None:
            sections.append((name, np.ascontiguousarray(value)))
    return sections


def _forest_sections(forest) -> tuple[list[tuple[str, np.ndarray]], dict]:
    if forest._trees_ is None and forest._lazy_key_ is None:
        raise SerializationError("cannot serialise an unfitted forest")
    engine = _export_engine(forest)
    tables = engine.to_tables()
    sections = _table_section_list(tables)
    assert forest.feature_subsets_ is not None
    subsets = [np.asarray(s, dtype=np.int64) for s in forest.feature_subsets_]
    sections.append(("subset_flat", np.ascontiguousarray(
        np.concatenate(subsets) if subsets else np.empty(0, dtype=np.int64))))
    sections.append(("subset_len", np.array([s.shape[0] for s in subsets], dtype=np.int64)))
    trailer = {
        "format": "rfbin",
        "version": list(_VERSION),
        "kind": "forest",
        "serialize_format_version": FORMAT_VERSION,
        "params": _sanitize_params(forest.get_params()),
        "n_features_in": int(forest.n_features_in_),
        "n_trees": int(engine.n_trees),
        "depth": int(tables["depth"]),
        "leaf_value_dtype": str(engine.leaf_value.dtype),
    }
    return sections, trailer


def _boosted_sections(model) -> tuple[list[tuple[str, np.ndarray]], dict]:
    if model._trees_ is None and model._lazy_key_ is None:
        raise SerializationError("cannot serialise an unfitted ensemble")
    engine = model.compile()
    tables = engine.to_tables()
    sections = _table_section_list(tables)
    trailer = {
        "format": "rfbin",
        "version": list(_VERSION),
        "kind": "gradient_boosting",
        "serialize_format_version": FORMAT_VERSION,
        "params": _sanitize_params(model.get_params()),
        "init_score": float(model.init_score_),
        "n_features_in": int(model.n_features_in_),
        "n_trees": int(engine.n_trees),
        "depth": int(tables["depth"]),
        "leaf_value_dtype": str(engine.leaf_value.dtype),
    }
    return sections, trailer


class BinaryExporter(Exporter):
    """Flat ``.rfbin`` artefacts — the zero-copy serving format."""

    name = "binary"
    extensions = (".rfbin",)
    magic = MAGIC
    supports_mmap = True

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------

    def save(self, model, path) -> None:
        sections, trailer = _model_sections(model)
        records = []
        offset = _aligned(_HEADER.size + _SECTION.size * len(sections))
        for name, arr in sections:
            if arr.ndim > 2:
                raise SerializationError(
                    f"section {name!r} has unsupported ndim {arr.ndim}"
                )
            data = arr.tobytes()
            records.append(
                {
                    "name": name,
                    "dtype": arr.dtype.str,
                    "ndim": arr.ndim,
                    "shape": (arr.shape + (0, 0))[:2],
                    "offset": offset,
                    "nbytes": len(data),
                    "crc": zlib.crc32(data),
                    "data": data,
                }
            )
            offset = _aligned(offset + len(data))
        trailer_bytes = json.dumps(trailer, sort_keys=True, allow_nan=False).encode(
            "utf-8"
        )
        trailer_offset = offset

        table = b"".join(
            _SECTION.pack(
                rec["name"].encode("ascii"),
                rec["dtype"].encode("ascii"),
                rec["ndim"],
                rec["shape"][0],
                rec["shape"][1],
                rec["offset"],
                rec["nbytes"],
                rec["crc"],
            )
            for rec in records
        )
        header = _HEADER.pack(
            MAGIC,
            _VERSION[0],
            _VERSION[1],
            _NATIVE_ORDER,
            0,
            len(records),
            _HEADER.size,
            trailer_offset,
            len(trailer_bytes),
            zlib.crc32(trailer_bytes),
            zlib.crc32(table),
        )
        # Crash-safe: the artefact is assembled in a temp sibling and
        # atomically renamed into place, so the published path never
        # holds a truncated file (a reader would otherwise fail its CRC
        # check at best, or mmap garbage at worst).
        with atomic_write(path, "wb") as fh:
            fh.write(header)
            fh.write(table)
            position = _HEADER.size + len(table)
            for rec in records:
                fh.write(b"\x00" * (rec["offset"] - position))
                fh.write(rec["data"])
                position = rec["offset"] + rec["nbytes"]
            fh.write(b"\x00" * (trailer_offset - position))
            fh.write(trailer_bytes)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------

    def load(self, path, mmap_mode: str | None = None, verify: bool | None = None):
        path = Path(path)
        file_size = path.stat().st_size
        if file_size < _HEADER.size:
            raise SerializationError(
                f"{path} is truncated: {file_size} bytes is smaller than the "
                f"{_HEADER.size}-byte header"
            )
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            (
                magic,
                ver_major,
                ver_minor,
                byteorder,
                _reserved,
                n_sections,
                table_offset,
                trailer_offset,
                trailer_nbytes,
                trailer_crc,
                table_crc,
            ) = _HEADER.unpack(header)
            if magic != MAGIC:
                raise SerializationError(
                    f"{path} is not a .rfbin artefact (bad magic {magic!r})"
                )
            if (ver_major, ver_minor) > _VERSION:
                raise SerializationError(
                    f"{path} uses .rfbin format version {ver_major}.{ver_minor}, "
                    f"newer than the supported {_VERSION[0]}.{_VERSION[1]}; "
                    "upgrade the library to read it"
                )
            if byteorder != _NATIVE_ORDER:
                theirs = "big" if byteorder == b">" else "little"
                raise SerializationError(
                    f"{path} was written on a {theirs}-endian machine; this "
                    f"host is {sys.byteorder}-endian and cannot map it"
                )
            table_end = table_offset + _SECTION.size * n_sections
            if table_offset != _HEADER.size or table_end > file_size:
                raise SerializationError(
                    f"{path} is truncated or corrupt: the section table does "
                    "not fit in the file"
                )
            if trailer_offset + trailer_nbytes > file_size:
                raise SerializationError(
                    f"{path} is truncated: the metadata trailer extends past "
                    "the end of the file"
                )
            fh.seek(table_offset)
            table = fh.read(_SECTION.size * n_sections)
            if zlib.crc32(table) != table_crc:
                raise SerializationError(
                    f"section table CRC mismatch in {path}: the artefact is "
                    "corrupted"
                )
            fh.seek(trailer_offset)
            trailer_bytes = fh.read(trailer_nbytes)
        if zlib.crc32(trailer_bytes) != trailer_crc:
            raise SerializationError(
                f"metadata trailer CRC mismatch in {path}: the artefact is "
                "corrupted"
            )
        try:
            trailer = json.loads(trailer_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"metadata trailer in {path} is not valid JSON: {exc}"
            ) from exc

        records = []
        for index in range(n_sections):
            raw = table[index * _SECTION.size : (index + 1) * _SECTION.size]
            name_b, dtype_b, ndim, shape0, shape1, offset, nbytes, crc = (
                _SECTION.unpack(raw)
            )
            name = name_b.rstrip(b"\x00").decode("ascii")
            dtype_str = dtype_b.rstrip(b"\x00").decode("ascii")
            try:
                dtype = np.dtype(dtype_str)
            except TypeError as exc:
                raise SerializationError(
                    f"section {name!r} in {path} declares unknown dtype "
                    f"{dtype_str!r}"
                ) from exc
            if dtype.byteorder not in ("=", "|", _NATIVE_ORDER.decode()):
                raise SerializationError(
                    f"section {name!r} in {path} is foreign-endian "
                    f"({dtype_str!r}); this host cannot map it"
                )
            shape = (shape0,) if ndim == 1 else (shape0, shape1)
            if ndim not in (1, 2):
                raise SerializationError(
                    f"section {name!r} in {path} has unsupported ndim {ndim}"
                )
            expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if expected != nbytes:
                raise SerializationError(
                    f"section {name!r} in {path} declares {nbytes} bytes but "
                    f"its shape {shape} needs {expected}"
                )
            if offset % _ALIGN != 0:
                raise SerializationError(
                    f"section {name!r} in {path} is misaligned "
                    f"(offset {offset} is not {_ALIGN}-byte aligned)"
                )
            if offset + nbytes > trailer_offset:
                raise SerializationError(
                    f"{path} is truncated or corrupt: section {name!r} "
                    "extends past its payload region"
                )
            records.append((name, dtype, shape, offset, nbytes, crc))

        arrays: dict[str, np.ndarray] = {}
        if mmap_mode is None:
            payload = path.read_bytes()
            for name, dtype, shape, offset, nbytes, crc in records:
                data = payload[offset : offset + nbytes]
                if zlib.crc32(data) != crc:
                    raise SerializationError(
                        f"section {name!r} CRC mismatch in {path}: the "
                        "artefact is corrupted (bit flip or partial write)"
                    )
                arrays[name] = np.frombuffer(data, dtype=dtype).reshape(shape)
        else:
            buf = np.memmap(path, dtype=np.uint8, mode="r")
            for name, dtype, shape, offset, nbytes, crc in records:
                view = buf[offset : offset + nbytes].view(dtype).reshape(shape)
                if verify and zlib.crc32(view.tobytes()) != crc:
                    raise SerializationError(
                        f"section {name!r} CRC mismatch in {path}: the "
                        "artefact is corrupted (bit flip or partial write)"
                    )
                arrays[name] = view

        kind = trailer.get("kind")
        source = (str(path), "binary", mmap_mode) if mmap_mode is not None else None
        if kind == "forest":
            return self._build_forest(arrays, trailer, path, source)
        if kind == "watermarked":
            return self._build_watermarked(arrays, trailer, path, source)
        if kind == "gradient_boosting":
            return self._build_boosted(arrays, trailer, path, source)
        raise SerializationError(f"unknown artefact kind {kind!r} in {path}")

    # ------------------------------------------------------------------
    # model assembly
    # ------------------------------------------------------------------

    @staticmethod
    def _engine_from(arrays: dict, trailer: dict, path):
        from ...ensemble.compiled import CompiledEnsemble

        try:
            return CompiledEnsemble.from_tables(
                {
                    "roots": arrays["roots"],
                    "feature": arrays["feature"],
                    "threshold": arrays["threshold"],
                    "left": arrays["left"],
                    "right": arrays["right"],
                    "leaf_value": arrays["leaf_value"],
                    "depth": int(trailer["depth"]),
                    "classes": arrays.get("classes"),
                    "leaf_proba": arrays.get("leaf_proba"),
                    "leaf_weight": arrays.get("leaf_weight"),
                }
            )
        except KeyError as exc:
            raise SerializationError(
                f"{path} is missing required section {exc.args[0]!r}"
            ) from exc

    def _build_forest(self, arrays, trailer, path, source):
        from ...ensemble.forest import RandomForestClassifier

        engine = self._engine_from(arrays, trailer, path)
        try:
            forest = RandomForestClassifier(**trailer["params"])
            forest.classes_ = np.asarray(arrays["classes"], dtype=np.int64)
            forest.n_features_in_ = int(trailer["n_features_in"])
            lengths = np.asarray(arrays["subset_len"], dtype=np.int64)
            flat = np.asarray(arrays["subset_flat"], dtype=np.int64)
            if int(lengths.sum()) != flat.shape[0] or lengths.shape[0] != engine.n_trees:
                raise SerializationError(
                    f"feature-subset sections in {path} disagree with the "
                    "node table"
                )
            forest.feature_subsets_ = [
                np.array(chunk, dtype=np.int64)
                for chunk in np.split(flat, np.cumsum(lengths)[:-1])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed forest metadata in {path}: {exc}"
            ) from exc
        forest._adopt_lazy(engine, mmap_source=source)
        return forest

    def _build_watermarked(self, arrays, trailer, path, source):
        from ...core.embedding import WatermarkedModel
        from ...core.signature import Signature
        from ...core.trigger import TriggerSet

        forest = self._build_forest(arrays, trailer, path, source)
        try:
            secret = json.loads(bytes(arrays["secret_json"]).decode("utf-8"))
            signature = Signature.from_string(secret["signature"])
            trigger = TriggerSet(
                indices=np.asarray(arrays["trigger_idx"], dtype=np.int64),
                X=np.asarray(arrays["trigger_X"], dtype=np.float64),
                y=np.asarray(arrays["trigger_y"], dtype=np.int64),
            )
            report = _report_from_dict(trailer["report"])
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"malformed watermark metadata in {path}: {exc}"
            ) from exc
        return WatermarkedModel(
            ensemble=forest, signature=signature, trigger=trigger, report=report
        )

    def _build_boosted(self, arrays, trailer, path, source):
        from ...ensemble.boosting import GradientBoostingClassifier

        engine = self._engine_from(arrays, trailer, path)
        try:
            model = GradientBoostingClassifier(**trailer["params"])
            model.init_score_ = float(trailer["init_score"])
            model.n_features_in_ = int(trailer["n_features_in"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed boosted-ensemble metadata in {path}: {exc}"
            ) from exc
        model._adopt_lazy(engine, mmap_source=source)
        return model


register(BinaryExporter())
