"""sklearn-style array interop (``.npz``).

Exports each tree in scikit-learn's ``tree_`` convention —
``children_left``/``children_right`` with ``-1`` at leaves, ``feature``
``-2``, ``threshold`` ``-2.0``, and a ``value`` array of per-node class
masses (classification) or leaf values (regression/boosted) — bundled
as one NumPy ``.npz`` archive.  This is the bridge format for tooling
that already speaks sklearn's flat arrays (SHAP-style explainers,
treelite-like compilers, notebook analysis).

The watermark secret never travels through this format: exporting a
``WatermarkedModel`` is refused, export ``model.ensemble`` explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...exceptions import SerializationError
from ..atomic import atomic_write
from .base import Exporter, register

__all__ = ["SklearnExporter"]

_LEAF = -1
_UNDEFINED = -2


def _tree_arrays(root, classes, class_position) -> dict[str, np.ndarray]:
    """One tree's sklearn-style arrays from its object graph."""
    from ...ensemble.compiled import compile_trees

    if classes is not None:
        table = compile_trees([root], classes=classes, collect_leaf_weight=True)
        value = np.array(table.leaf_weight, dtype=np.float64)
        # Hand-built leaves carry no class masses; fall back to a one-hot
        # row on the leaf label so argmax round-trips the prediction.
        leaf_rows = np.flatnonzero(table.feature == _LEAF)
        for row in leaf_rows:
            if value[row].sum() <= 0:
                value[row, class_position[int(table.leaf_value[row])]] = 1.0
        value = value[:, None, :]
    else:
        table = compile_trees([root], classes=None, value_dtype=np.float64)
        value = np.asarray(table.leaf_value, dtype=np.float64)[:, None, None]
    is_leaf = table.feature == _LEAF
    return {
        "children_left": np.where(is_leaf, _LEAF, table.left).astype(np.int64),
        "children_right": np.where(is_leaf, _LEAF, table.right).astype(np.int64),
        "feature": np.where(is_leaf, _UNDEFINED, table.feature).astype(np.int64),
        "threshold": np.where(is_leaf, float(_UNDEFINED), table.threshold),
        "value": value,
    }


def _node_from_arrays(est: dict, classes: np.ndarray | None):
    """Rebuild an object-graph root from one tree's sklearn arrays."""
    from ...trees.compiled import classification_leaf_builder, table_to_node

    children_left = np.asarray(est["children_left"], dtype=np.int64)
    children_right = np.asarray(est["children_right"], dtype=np.int64)
    feature = np.asarray(est["feature"], dtype=np.int64)
    threshold = np.asarray(est["threshold"], dtype=np.float64)
    value = np.asarray(est["value"], dtype=np.float64)
    n_nodes = feature.shape[0]
    is_leaf = children_left == _LEAF
    self_index = np.arange(n_nodes, dtype=np.int64)
    our_feature = np.where(is_leaf, -1, feature)
    our_threshold = np.where(is_leaf, np.inf, threshold)
    our_left = np.where(is_leaf, self_index, children_left)
    our_right = np.where(is_leaf, self_index, children_right)
    if classes is not None:
        masses = value[:, 0, :]
        leaf_value = classes[np.argmax(masses, axis=1)]
        make_leaf = classification_leaf_builder(leaf_value, classes, masses)
        make_internal = None
    else:
        from ...trees.regression import _RegLeaf, _RegNode

        def make_leaf(index: int):
            return _RegLeaf(value=float(value[index, 0, 0]))

        def make_internal(index, left_child, right_child):
            return _RegNode(
                feature=int(our_feature[index]),
                threshold=float(our_threshold[index]),
                left=left_child,
                right=right_child,
            )

    return table_to_node(
        our_feature, our_threshold, our_left, our_right, 0, make_leaf, make_internal
    )


class SklearnExporter(Exporter):
    """sklearn ``tree_``-convention arrays in an ``.npz`` archive."""

    name = "sklearn"
    extensions = (".npz",)
    magic = b"PK\x03\x04"
    supports_mmap = False

    def save(self, model, path) -> None:
        from ...core.embedding import WatermarkedModel
        from ...ensemble.boosting import GradientBoostingClassifier
        from ...ensemble.forest import RandomForestClassifier

        if isinstance(model, WatermarkedModel):
            raise SerializationError(
                "the sklearn exporter would strip the watermark secret; "
                "export model.ensemble explicitly if that is intended"
            )
        arrays: dict[str, np.ndarray] = {}
        if isinstance(model, RandomForestClassifier):
            trees = model._check_fitted()
            classes = model.classes_
            class_position = {int(c): i for i, c in enumerate(classes)}
            meta = {
                "kind": "forest",
                "params": _jsonable_params(model.get_params()),
                "classes": [int(c) for c in classes],
                "n_features_in": int(model.n_features_in_),
                "n_estimators": len(trees),
            }
            for index, tree in enumerate(trees):
                for key, arr in _tree_arrays(
                    tree.root_, classes, class_position
                ).items():
                    arrays[f"est{index}_{key}"] = arr
                arrays[f"est{index}_subset"] = np.asarray(
                    model.feature_subsets_[index], dtype=np.int64
                )
        elif isinstance(model, GradientBoostingClassifier):
            trees = model._check_fitted()
            meta = {
                "kind": "gradient_boosting",
                "params": _jsonable_params(model.get_params()),
                "init_score": float(model.init_score_),
                "n_features_in": int(model.n_features_in_),
                "n_estimators": len(trees),
            }
            for index, tree in enumerate(trees):
                for key, arr in _tree_arrays(tree.root_, None, None).items():
                    arrays[f"est{index}_{key}"] = arr
        else:
            raise SerializationError(
                f"the sklearn exporter cannot serialise {type(model).__name__!r}"
            )
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True, allow_nan=False).encode("utf-8"),
            dtype=np.uint8,
        )
        # Crash-safe: assembled in a temp sibling, renamed atomically.
        with atomic_write(path, "wb") as fh:
            np.savez(fh, **arrays)

    def load(self, path, mmap_mode: str | None = None):
        # npz archives are zip containers; mmap_mode is advisory only.
        from ...ensemble.boosting import GradientBoostingClassifier
        from ...ensemble.forest import RandomForestClassifier
        from ...trees.regression import RegressionTree
        from ...trees.tree import DecisionTreeClassifier

        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError) as exc:
            raise SerializationError(
                f"{path} is not a readable sklearn-interop archive: {exc}"
            ) from exc
        try:
            meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
            kind = meta["kind"]
            n_estimators = int(meta["n_estimators"])
            estimators = [
                {
                    key: arrays[f"est{index}_{key}"]
                    for key in (
                        "children_left",
                        "children_right",
                        "feature",
                        "threshold",
                        "value",
                    )
                }
                for index in range(n_estimators)
            ]
            if kind == "forest":
                classes = np.asarray(meta["classes"], dtype=np.int64)
                forest = RandomForestClassifier(**meta["params"])
                forest.classes_ = classes
                forest.n_features_in_ = int(meta["n_features_in"])
                forest.feature_subsets_ = [
                    np.asarray(arrays[f"est{index}_subset"], dtype=np.int64)
                    for index in range(n_estimators)
                ]
                trees = []
                for index, est in enumerate(estimators):
                    tree = DecisionTreeClassifier(
                        feature_subset=forest.feature_subsets_[index]
                    )
                    tree.root_ = _node_from_arrays(est, classes)
                    tree.classes_ = classes
                    tree.n_features_in_ = forest.n_features_in_
                    trees.append(tree)
                forest.trees_ = trees
                return forest
            if kind == "gradient_boosting":
                model = GradientBoostingClassifier(**meta["params"])
                model.init_score_ = float(meta["init_score"])
                model.n_features_in_ = int(meta["n_features_in"])
                trees = []
                for est in estimators:
                    tree = RegressionTree(
                        max_depth=model.max_depth,
                        min_samples_leaf=model.min_samples_leaf,
                    )
                    tree.root_ = _node_from_arrays(est, None)
                    tree.n_features_in_ = model.n_features_in_
                    trees.append(tree)
                model.trees_ = trees
                return model
            raise SerializationError(f"unknown artefact kind {kind!r} in {path}")
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"malformed sklearn-interop archive {path}: {exc}"
            ) from exc


def _jsonable_params(params: dict) -> dict:
    params = dict(params)
    if isinstance(
        params.get("random_state"), (np.random.Generator, np.random.SeedSequence)
    ):
        params["random_state"] = None
    return params


register(SklearnExporter())
