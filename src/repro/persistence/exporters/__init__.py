"""The pluggable exporter family.

Importing this package registers the built-in formats:

- ``binary`` — flat ``.rfbin`` node tables, mmap-able zero-copy serving
  format (:mod:`.binary`);
- ``json`` — the inspectable, court-facing escape hatch, byte-compatible
  with pre-exporter artefacts (:mod:`.json`);
- ``sklearn`` — ``tree_``-convention ``.npz`` arrays for interop
  (:mod:`.sklearn`).

Third-party formats subclass :class:`~.base.Exporter` and call
:func:`~.base.register`.
"""

from .base import (
    Exporter,
    available_formats,
    detect_format,
    format_for_path,
    get_exporter,
    register,
)
from .binary import MAGIC, BinaryExporter
from .json import JsonExporter
from .sklearn import SklearnExporter

__all__ = [
    "Exporter",
    "register",
    "get_exporter",
    "available_formats",
    "detect_format",
    "format_for_path",
    "BinaryExporter",
    "JsonExporter",
    "SklearnExporter",
    "MAGIC",
]
