"""Feature preprocessing: the paper normalises every dataset into [0, 1].

The scaler fits on training data and transforms train/test alike, so
the ε-ball geometry of the forgery experiments is expressed in the same
normalised units as the paper's.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_X
from ..exceptions import NotFittedError

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Min-max scaling of every feature into ``[0, 1]``.

    Constant features map to 0.  Values outside the fitted range (e.g.
    test points beyond the training min/max) are clipped, keeping the
    unit-hypercube domain assumption of the forgery solvers valid.
    """

    def __init__(self, clip: bool = True) -> None:
        self.clip = clip
        self.min_: np.ndarray | None = None
        self.span_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        """Record per-feature minima and ranges."""
        X = check_X(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span < 1e-12] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        """Scale ``X`` with the fitted parameters."""
        if self.min_ is None or self.span_ is None:
            raise NotFittedError("this MinMaxScaler is not fitted yet")
        X = check_X(X)
        scaled = (X - self.min_) / self.span_
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def fit_transform(self, X) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(X).transform(X)
