"""Low-level synthetic data generators.

Building blocks for the dataset stand-ins in
:mod:`repro.datasets.registry`: smooth random image fields (for the
MNIST2-6 stand-in), correlated Gaussian tabular data (breast-cancer
stand-in) and nonlinear interaction labels (ijcnn1 stand-in).
All generators emit features in ``[0, 1]`` — the paper normalises every
dataset into that interval — and labels in ``{-1, +1}``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state
from ..exceptions import ValidationError

__all__ = [
    "smooth_image_prototype",
    "image_class_samples",
    "correlated_gaussian_classes",
    "nonlinear_interaction_labels",
    "interaction_score",
    "margin_interaction_dataset",
    "cluster_minority_dataset",
]


def _gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur implemented with numpy convolutions.

    Kept dependency-free (no scipy.ndimage) so the data generators work
    anywhere the core library does.
    """
    radius = max(1, int(3 * sigma))
    offsets = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    kernel /= kernel.sum()
    padded = np.pad(image, radius, mode="edge")
    # Convolve rows, then columns.
    rows = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="valid"), 1, padded)
    blurred = np.apply_along_axis(lambda c: np.convolve(c, kernel, mode="valid"), 0, rows)
    return blurred


def smooth_image_prototype(
    size: int, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """A smooth random "stroke pattern" image in ``[0, 1]``.

    White noise blurred with a Gaussian kernel yields low-frequency
    blobs reminiscent of digit strokes; contrast-stretching to the full
    unit interval gives pixels informative dynamic range.
    """
    if size < 4:
        raise ValidationError(f"image size must be >= 4, got {size}")
    noise = rng.standard_normal((size, size))
    field = _gaussian_blur(noise, sigma)
    low, high = field.min(), field.max()
    if high - low < 1e-12:
        return np.zeros_like(field)
    return (field - low) / (high - low)


def image_class_samples(
    prototype: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    max_shift: int = 2,
    noise_scale: float = 0.12,
    intensity_jitter: float = 0.15,
) -> np.ndarray:
    """Sample noisy, jittered variants of a prototype image.

    Each sample applies a random integer translation (``np.roll``), a
    multiplicative intensity jitter and additive pixel noise, then clips
    to ``[0, 1]`` — mimicking the within-class variability of handwritten
    digits at a level a random forest separates with high accuracy.
    """
    size = prototype.shape[0]
    samples = np.empty((n_samples, size * size), dtype=np.float64)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n_samples, 2))
    intensities = 1.0 + intensity_jitter * rng.uniform(-1.0, 1.0, size=n_samples)
    for i in range(n_samples):
        image = np.roll(prototype, shift=tuple(shifts[i]), axis=(0, 1))
        image = intensities[i] * image + noise_scale * rng.standard_normal((size, size))
        samples[i] = np.clip(image, 0.0, 1.0).ravel()
    return samples


def correlated_gaussian_classes(
    n_samples: int,
    n_features: int,
    positive_fraction: float,
    separation: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Two correlated-Gaussian classes, min-max normalised to ``[0, 1]``.

    A random full-rank mixing matrix induces feature correlations (as in
    real tabular medical data); the positive class is shifted by
    ``separation`` along a random unit direction of the latent space.
    """
    if not 0.0 < positive_fraction < 1.0:
        raise ValidationError(
            f"positive_fraction must be in (0, 1), got {positive_fraction}"
        )
    n_positive = int(round(positive_fraction * n_samples))
    n_negative = n_samples - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValidationError("both classes need at least one sample")

    mixing = rng.standard_normal((n_features, n_features)) / np.sqrt(n_features)
    mixing += 0.6 * np.eye(n_features)  # keep conditioning reasonable
    direction = rng.standard_normal(n_features)
    direction /= np.linalg.norm(direction)

    latent_neg = rng.standard_normal((n_negative, n_features))
    latent_pos = rng.standard_normal((n_positive, n_features)) + separation * direction
    X = np.vstack([latent_neg @ mixing, latent_pos @ mixing])
    y = np.concatenate([-np.ones(n_negative, dtype=np.int64), np.ones(n_positive, dtype=np.int64)])

    order = rng.permutation(n_samples)
    X, y = X[order], y[order]

    low = X.min(axis=0)
    span = X.max(axis=0) - low
    span[span < 1e-12] = 1.0
    return (X - low) / span, y


def interaction_score(X: np.ndarray) -> np.ndarray:
    """Nonlinear multi-feature interaction score used by the ijcnn1 stand-in.

    Mixes a radial ridge (features 0-1), an XOR interaction (features
    2-3) and a smooth wave (feature 4); boundaries of this score demand
    deep, many-leaved trees.
    """
    if X.shape[1] < 5:
        raise ValidationError("need at least 5 features for the interaction score")
    a, b, c, d, e = (X[:, j] for j in range(5))
    radial = np.hypot(a - 0.5, b - 0.5)
    xor_term = np.logical_xor(c > 0.5, d > 0.5).astype(np.float64)
    wave = np.sin(4.0 * np.pi * e)
    return -np.abs(radial - 0.3) + 0.25 * xor_term + 0.12 * wave


def margin_interaction_dataset(
    n_samples: int,
    n_features: int,
    positive_fraction: float,
    rng: np.random.Generator,
    margin: float = 0.10,
    oversample: int = 14,
) -> tuple[np.ndarray, np.ndarray]:
    """Imbalanced nonlinear dataset with a margin around the boundary.

    Uniform points are oversampled, scored with
    :func:`interaction_score`, points within ``margin`` of the
    class-threshold are rejected (so the boundary is learnable from
    finite samples), and the survivors are rebalanced to exactly
    ``positive_fraction`` positives.  This is the ijcnn1 stand-in's
    engine: strong 10/90 imbalance, high achievable accuracy, deep trees.
    """
    if not 0.0 < positive_fraction < 1.0:
        raise ValidationError(
            f"positive_fraction must be in (0, 1), got {positive_fraction}"
        )
    if margin < 0:
        raise ValidationError(f"margin must be >= 0, got {margin}")
    pool_size = max(oversample * n_samples, 4000)
    X_pool = rng.uniform(0.0, 1.0, size=(pool_size, n_features))
    scores = interaction_score(X_pool)
    threshold = np.quantile(scores, 1.0 - positive_fraction)
    # The score density thins out above the threshold, so the positive
    # side uses a slimmer band; rejection still leaves a learnable gap.
    keep = (scores > threshold + 0.5 * margin) | (scores < threshold - margin)
    X_kept, kept_scores = X_pool[keep], scores[keep]

    positives = np.flatnonzero(kept_scores > threshold)
    negatives = np.flatnonzero(kept_scores <= threshold)
    n_positive = max(1, int(round(positive_fraction * n_samples)))
    n_negative = n_samples - n_positive
    if positives.shape[0] < n_positive or negatives.shape[0] < n_negative:
        raise ValidationError(
            f"margin={margin} rejects too many samples to build a "
            f"{n_samples}-instance dataset; lower the margin or oversample more"
        )
    rng.shuffle(positives)
    rng.shuffle(negatives)
    index = np.concatenate([positives[:n_positive], negatives[:n_negative]])
    rng.shuffle(index)
    labels = np.where(kept_scores[index] > threshold, 1, -1).astype(np.int64)
    return X_kept[index], labels


def cluster_minority_dataset(
    n_samples: int,
    n_features: int,
    positive_fraction: float,
    rng: np.random.Generator,
    n_clusters: int = 8,
    cluster_std: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Imbalanced dataset whose minority class forms tight clusters.

    Positives are drawn from ``n_clusters`` truncated Gaussian clusters
    (clipped at 2.5 σ); negatives are uniform over ``[0, 1]^d`` with a
    rejection shell of ``3.5 σ`` around every cluster centre, leaving a
    clean margin.  Trees must spend several axis-aligned splits per
    cluster per dimension, so ensembles grow many leaves as the sample
    size increases — the structural property behind the paper's
    forgery-hardness observation on ijcnn1 — while remaining highly
    accurate.
    """
    if not 0.0 < positive_fraction < 1.0:
        raise ValidationError(
            f"positive_fraction must be in (0, 1), got {positive_fraction}"
        )
    if n_clusters < 1:
        raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
    if cluster_std <= 0:
        raise ValidationError(f"cluster_std must be > 0, got {cluster_std}")

    n_positive = max(1, int(round(positive_fraction * n_samples)))
    n_negative = n_samples - n_positive
    if n_negative < 1:
        raise ValidationError("positive_fraction leaves no negative samples")

    centers = rng.uniform(0.2, 0.8, size=(n_clusters, n_features))
    assignment = rng.integers(n_clusters, size=n_positive)
    offsets = np.clip(
        rng.standard_normal((n_positive, n_features)) * cluster_std,
        -2.5 * cluster_std,
        2.5 * cluster_std,
    )
    X_positive = np.clip(centers[assignment] + offsets, 0.0, 1.0)

    X_negative = np.empty((0, n_features), dtype=np.float64)
    while X_negative.shape[0] < n_negative:
        candidates = rng.uniform(0.0, 1.0, size=(max(2 * n_negative, 512), n_features))
        nearest = (
            np.abs(candidates[:, None, :] - centers[None, :, :]).max(axis=2).min(axis=1)
        )
        X_negative = np.vstack([X_negative, candidates[nearest > 3.5 * cluster_std]])
    X_negative = X_negative[:n_negative]

    X = np.vstack([X_positive, X_negative])
    y = np.concatenate(
        [np.ones(n_positive, dtype=np.int64), -np.ones(n_negative, dtype=np.int64)]
    )
    order = rng.permutation(n_samples)
    return X[order], y[order]


def nonlinear_interaction_labels(
    X: np.ndarray,
    positive_fraction: float,
    rng: np.random.Generator,
    label_noise: float = 0.02,
) -> np.ndarray:
    """Label instances by a nonlinear multi-feature interaction score.

    The score mixes a radial term, an XOR-style interaction and a smooth
    sinusoidal term over the first few features; the positive class is
    the top ``positive_fraction`` quantile.  Such boundaries require
    deep, many-leaved trees — reproducing the paper's observation that
    the ijcnn1 ensemble has far more leaves than the others.
    """
    if X.shape[1] < 5:
        raise ValidationError("need at least 5 features for the interaction score")
    if not 0.0 < positive_fraction < 1.0:
        raise ValidationError(
            f"positive_fraction must be in (0, 1), got {positive_fraction}"
        )
    a, b, c, d, e = (X[:, j] for j in range(5))
    radial = np.hypot(a - 0.5, b - 0.5)
    xor_term = np.logical_xor(c > 0.5, d > 0.5).astype(np.float64)
    wave = np.sin(6.0 * np.pi * e)
    score = -np.abs(radial - 0.3) + 0.25 * xor_term + 0.15 * wave

    threshold = np.quantile(score, 1.0 - positive_fraction)
    y = np.where(score > threshold, 1, -1).astype(np.int64)

    if label_noise > 0:
        flip = rng.uniform(size=X.shape[0]) < label_noise
        y[flip] = -y[flip]
    # Guard: noise must not wipe out a class entirely on tiny samples.
    if (y == 1).sum() == 0:
        y[int(np.argmax(score))] = 1
    if (y == -1).sum() == 0:
        y[int(np.argmin(score))] = -1
    return y
