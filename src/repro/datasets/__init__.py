"""Synthetic stand-ins for the paper's evaluation datasets (Table 1)."""

from .preprocessing import MinMaxScaler
from .registry import (
    DATASET_NAMES,
    Dataset,
    breast_cancer_like,
    dataset_statistics,
    ijcnn1_like,
    load_dataset,
    mnist26_like,
)
from .synthetic import (
    cluster_minority_dataset,
    correlated_gaussian_classes,
    image_class_samples,
    interaction_score,
    margin_interaction_dataset,
    nonlinear_interaction_labels,
    smooth_image_prototype,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "MinMaxScaler",
    "breast_cancer_like",
    "cluster_minority_dataset",
    "correlated_gaussian_classes",
    "dataset_statistics",
    "ijcnn1_like",
    "image_class_samples",
    "interaction_score",
    "margin_interaction_dataset",
    "load_dataset",
    "mnist26_like",
    "nonlinear_interaction_labels",
    "smooth_image_prototype",
]
