"""The three evaluation datasets of the paper, as synthetic stand-ins.

Table 1 of the paper:

=============  =========  ========  ============
Dataset        Instances  Features  Distribution
=============  =========  ========  ============
MNIST2-6          13,866       784  51%/49%
breast-cancer        569        30  63%/37%
ijcnn1            20,000        22  10%/90%
=============  =========  ========  ============

(ijcnn1 is reduced to 10,000 instances by stratified sampling before
the experiments.)  The real datasets are not available offline, so each
loader generates a synthetic stand-in matching the instance count,
dimensionality, class distribution and — qualitatively — the learning
difficulty; see DESIGN.md §2 for the substitution rationale.  Loaders
accept ``n_samples`` so tests and benchmarks can run scaled-down
versions with identical structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_random_state
from ..exceptions import ValidationError
from .synthetic import (
    cluster_minority_dataset,
    correlated_gaussian_classes,
    image_class_samples,
    smooth_image_prototype,
)

__all__ = [
    "Dataset",
    "mnist26_like",
    "breast_cancer_like",
    "ijcnn1_like",
    "load_dataset",
    "dataset_statistics",
    "DATASET_NAMES",
]

DATASET_NAMES = ("mnist26", "breast-cancer", "ijcnn1")


@dataclass(frozen=True)
class Dataset:
    """A named dataset with ±1 labels and features in [0, 1]."""

    name: str
    X: np.ndarray
    y: np.ndarray

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def class_distribution(self) -> dict[int, float]:
        """Fraction of samples per label."""
        labels, counts = np.unique(self.y, return_counts=True)
        return {int(label): float(count / self.y.shape[0]) for label, count in zip(labels, counts)}


def mnist26_like(n_samples: int = 13866, random_state=None, image_size: int = 28) -> Dataset:
    """MNIST2-6 stand-in: 784 pixel features, ~51/49 class balance.

    Two *correlated* smooth prototypes play the roles of digits 2 and 6:
    the negative class is a low-amplitude smooth perturbation of the
    positive prototype.  Like real digit pairs, no single pixel strongly
    separates the classes — many pixels are weakly informative — so
    trees must grow several levels and many leaves while the ensemble
    stays accurate.  Class +1 has 51% prevalence.
    """
    if n_samples < 4:
        raise ValidationError(f"n_samples must be >= 4, got {n_samples}")
    rng = check_random_state(random_state)
    n_positive = int(round(0.51 * n_samples))
    n_negative = n_samples - n_positive

    base = smooth_image_prototype(image_size, sigma=2.2, rng=rng)
    perturbation = smooth_image_prototype(image_size, sigma=2.2, rng=rng) - 0.5

    def sharpen(image: np.ndarray) -> np.ndarray:
        # Push pixel masses toward 0/1, like binarised digit strokes;
        # mid-range thresholds then require large L∞ distortion to
        # cross, which is what makes forgery hard at small ε (Fig. 4).
        return 1.0 / (1.0 + np.exp(-6.0 * (image - 0.5)))

    prototype_pos = sharpen(base)
    prototype_neg = sharpen(np.clip(base + 0.5 * perturbation, 0.0, 1.0))
    X = np.vstack(
        [
            image_class_samples(prototype_pos, n_positive, rng),
            image_class_samples(prototype_neg, n_negative, rng),
        ]
    )
    y = np.concatenate(
        [np.ones(n_positive, dtype=np.int64), -np.ones(n_negative, dtype=np.int64)]
    )
    order = rng.permutation(n_samples)
    return Dataset(name="mnist26", X=X[order], y=y[order])


def breast_cancer_like(n_samples: int = 569, random_state=None) -> Dataset:
    """breast-cancer stand-in: 30 correlated tabular features, 63/37.

    Class −1 (benign analogue) holds 63% of the samples, matching the
    paper's distribution column.
    """
    rng = check_random_state(random_state)
    X, y = correlated_gaussian_classes(
        n_samples=n_samples,
        n_features=30,
        positive_fraction=0.37,
        separation=6.0,
        rng=rng,
    )
    return Dataset(name="breast-cancer", X=X, y=y)


def ijcnn1_like(n_samples: int = 10000, random_state=None) -> Dataset:
    """ijcnn1 stand-in: 22 features, strongly imbalanced (10% positive).

    The paper reduces ijcnn1 to 10,000 instances with stratified
    sampling, so 10,000 is the default here.  The minority class forms
    tight clusters that trees must isolate with several splits each, so
    ensembles grow many leaves as data grows (the property driving the
    paper's forgery-hardness observation on ijcnn1).
    """
    rng = check_random_state(random_state)
    X, y = cluster_minority_dataset(
        n_samples=n_samples,
        n_features=22,
        positive_fraction=0.10,
        rng=rng,
    )
    return Dataset(name="ijcnn1", X=X, y=y)


def load_dataset(name: str, n_samples: int | None = None, random_state=None) -> Dataset:
    """Load a stand-in dataset by paper name.

    ``n_samples=None`` uses the paper's size (Table 1 / the reduced
    ijcnn1); smaller values generate structurally identical scaled-down
    versions for fast tests and benchmarks.
    """
    loaders = {
        "mnist26": mnist26_like,
        "breast-cancer": breast_cancer_like,
        "ijcnn1": ijcnn1_like,
    }
    if name not in loaders:
        raise ValidationError(
            f"unknown dataset {name!r}; expected one of {sorted(loaders)}"
        )
    if n_samples is None:
        return loaders[name](random_state=random_state)
    return loaders[name](n_samples=n_samples, random_state=random_state)


def dataset_statistics(dataset: Dataset) -> dict:
    """Row of Table 1 for one dataset: size, dimensionality, distribution."""
    distribution = dataset.class_distribution()
    majority = max(distribution.values())
    minority = min(distribution.values())
    return {
        "dataset": dataset.name,
        "instances": dataset.n_samples,
        "features": dataset.n_features,
        "distribution": f"{round(100 * majority)}%/{round(100 * minority)}%",
    }
