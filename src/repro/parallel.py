"""Process-pool execution helpers shared by the training hot paths.

CPython's GIL makes the pure-Python CART grower effectively serial in
threads, so parallel training uses *processes*.  The helpers here keep
that machinery in one place:

- :func:`resolve_n_jobs` normalises the sklearn-style ``n_jobs``
  convention (``None``/``1`` = serial, ``-1`` = all cores, ``k`` = at
  most ``k`` workers) to a concrete worker count;
- :func:`run_batches` executes one picklable callable per batch in a
  process pool and returns the results in submission order.

Workers receive their inputs by pickling, so callers batch their work
into one task per worker (rather than one per item) to amortise the
cost of shipping the training matrix.  The ``fork`` start method is
preferred when the platform offers it: it avoids re-importing the
library in every worker, which would otherwise dominate the short
tree-fitting tasks the embedding loop submits.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .exceptions import ValidationError

__all__ = [
    "resolve_n_jobs",
    "partition",
    "run_batches",
    "shared_payload",
    "fork_available",
    "shared_model_handle",
    "open_model_handle",
]

T = TypeVar("T")

#: Copy-on-write payload for fork-based pools (see :func:`run_batches`).
_SHARED: object | None = None


def shared_payload() -> object | None:
    """The ``shared`` object of the enclosing :func:`run_batches` call.

    Under the ``fork`` start method workers inherit the parent's memory
    at pool creation, so a large read-mostly object (e.g. the forgery
    attack's compiled encodings, or the training engine's presorted
    dataset — see :func:`repro.trees.presort.adopt_presort`) can be
    handed to every worker without pickling: the parent passes it as
    ``run_batches(..., shared=obj)`` and workers retrieve it here.  Returns ``None`` outside a
    ``run_batches`` call or when the platform had to fall back to
    ``spawn`` (workers then rebuild whatever they need from their
    pickled batch arguments — callers must treat the payload as an
    optimisation, never the only source of an input).
    """
    return _SHARED


def shared_model_handle(model) -> tuple | None:
    """The ``(path, format, mmap_mode)`` reopen handle behind ``model``.

    A model loaded from an mmap-able artefact (``.rfbin`` with
    ``mmap_mode="r"``) remembers where it came from; shipping this
    handle to worker processes — instead of pickling the model — lets
    every worker map the *same* file, so the node tables exist once in
    the page cache no matter how many workers serve from them.  Returns
    ``None`` for models that never touched disk (workers then receive a
    pickled copy as before).  Models whose lazy state is intact already
    pickle down to this handle automatically; the explicit form exists
    for callers that route work through queues or their own IPC.
    """
    handle = getattr(model, "_mmap_source_", None)
    if handle is None:
        ensemble = getattr(model, "ensemble", None)
        handle = getattr(ensemble, "_mmap_source_", None)
    return handle


def open_model_handle(handle: tuple):
    """Reopen a :func:`shared_model_handle` in this process (worker side)."""
    from .persistence import load

    path, fmt, mmap_mode = handle
    return load(path, format=fmt, mmap_mode=mmap_mode)


def resolve_n_jobs(n_jobs, n_tasks: int | None = None) -> int:
    """Resolve an ``n_jobs`` specification to a concrete worker count.

    ``None`` and ``1`` mean serial execution (return 1); ``-1`` means
    one worker per available core; a positive int is used as-is.  When
    ``n_tasks`` is given the result is additionally capped by it — a
    pool wider than the work to do only adds startup cost.
    """
    if n_jobs is None:
        jobs = 1
    elif isinstance(n_jobs, bool) or not isinstance(n_jobs, int):
        raise ValidationError(
            f"n_jobs must be None, -1 or a positive int, got {n_jobs!r}"
        )
    elif n_jobs == -1:
        jobs = os.cpu_count() or 1
    elif n_jobs >= 1:
        jobs = n_jobs
    else:
        raise ValidationError(
            f"n_jobs must be None, -1 or a positive int, got {n_jobs!r}"
        )
    if n_tasks is not None:
        jobs = max(1, min(jobs, n_tasks))
    return jobs


def partition(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, non-empty
    chunks of near-equal size, preserving order."""
    n_chunks = max(1, min(n_chunks, len(items)))
    bounds = [round(i * len(items) / n_chunks) for i in range(n_chunks + 1)]
    return [list(items[bounds[i] : bounds[i + 1]]) for i in range(n_chunks)]


def _pool_context():
    """The preferred multiprocessing context (``fork`` where available)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def fork_available() -> bool:
    """True when pools fork — i.e. :func:`shared_payload` reaches workers."""
    return "fork" in multiprocessing.get_all_start_methods()


def run_batches(
    fn: Callable[..., T],
    batches: Iterable[tuple],
    n_workers: int,
    shared: object | None = None,
) -> list[T]:
    """Run ``fn(*batch)`` for every batch in a pool of ``n_workers``.

    Results come back in submission order.  With one worker (or one
    batch) the calls run inline — no pool, no pickling.  ``shared`` is
    made available to workers via :func:`shared_payload` for the
    duration of the call (fork-inherited, never pickled).
    """
    global _SHARED
    batches = list(batches)
    _SHARED = shared
    try:
        if n_workers <= 1 or len(batches) <= 1:
            return [fn(*batch) for batch in batches]
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(batches)), mp_context=_pool_context()
        ) as pool:
            futures = [pool.submit(fn, *batch) for batch in batches]
            return [future.result() for future in futures]
    finally:
        _SHARED = None
