"""The contract rule catalogue (``RPR0xx``) and its registry.

Each rule mechanises one convention this repo already documents and
regression-tests, so the docstrings double as the ``repro lint
--explain`` output: every one states *why* the contract exists, what to
write *instead*, and which PR/doc established it.  Rules are
deliberately narrow — they encode the specific failure modes earlier
PRs actually had to fix, not a general style guide.

Scoping lives in :meth:`Rule.applies_to`: a rule fires only where its
contract applies (``RPR002`` in result-producing packages, ``RPR004``
in the persistence layer, ``RPR006`` where lazy state is shared across
threads).  Everything else is a plain AST walk over the shared
:class:`~repro.analysis.context.FileContext`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..exceptions import ValidationError
from .context import FileContext, Finding

__all__ = [
    "META_CODE",
    "Rule",
    "all_rules",
    "explain",
    "get_rule",
    "known_codes",
    "register",
]

#: Code of the suppression-hygiene meta rule (not suppressible itself).
META_CODE = "RPR000"


class Rule:
    """Base class: subclass, set ``code``/``name``, implement ``check``."""

    code: str = ""
    name: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, "Rule"] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    rule = cls()
    if not rule.code or not rule.name:
        raise ValidationError(f"rule {cls.__name__} must define code and name")
    if rule.code in _REGISTRY:
        raise ValidationError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def known_codes() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ValidationError(
            f"unknown rule code {code!r} (known: {', '.join(sorted(_REGISTRY))})"
        ) from None


def explain(code: str) -> str:
    """The ``--explain`` text: code, name, and the rule's docstring."""
    rule = get_rule(code)
    import inspect

    doc = inspect.cleandoc(rule.__doc__ or "(no rationale recorded)")
    return f"{rule.code} — {rule.name}\n\n{doc}"


# ----------------------------------------------------------------------
# RPR000 — suppression hygiene (meta rule; findings are produced by the
# runner from parsed suppression comments, not from the AST).
# ----------------------------------------------------------------------


@register
class SuppressionHygiene(Rule):
    """Every suppression must carry a reason and name real rule codes.

    Why:
        A suppression is a signed waiver: the next reader (and the CI
        log) must be able to tell why the contract does not apply at
        this site.  A bare ``# repro: allow[RPR003]`` silences the
        check while recording nothing; a typo'd code silences nothing
        while *looking* like a waiver.  Both rot the ledger.

    Instead:
        ``# repro: allow[RPR003] <why this site is exempt>`` — and cite
        the doc or PR that sanctions the exemption when one exists.
        RPR000 itself cannot be suppressed.

    Established by:
        this linter's own contract (docs/analysis.md).
    """

    code = META_CODE
    name = "suppression-hygiene"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        known = known_codes()
        for sup in ctx.suppressions:
            def at(message: str, line: int = sup.line) -> Finding:
                return Finding(
                    code=self.code, path=str(ctx.path), line=line, col=0,
                    message=message,
                )

            if not sup.codes:
                yield at(
                    "suppression names no rule codes — write "
                    "`# repro: allow[RPR0xx] reason`"
                )
            for code in sup.codes:
                if code == META_CODE:
                    yield at("RPR000 (suppression hygiene) cannot be suppressed")
                elif code not in known:
                    yield at(
                        f"suppression names unknown rule code {code!r} "
                        f"(known: {', '.join(known)})"
                    )
            if not sup.reason:
                yield at(
                    "suppression carries no reason — a waiver must say why "
                    "the contract does not apply here"
                )


# ----------------------------------------------------------------------
# RPR001 — seeded-RNG discipline
# ----------------------------------------------------------------------

_STDLIB_RANDOM_OK = {"Random"}
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}
_SPAWN_SCOPED = ("repro.traffic", "repro.faults")


@register
class SeededRngDiscipline(Rule):
    """No global-state or unseeded RNG draws; no ``spawn`` in block-seeded code.

    Why:
        Verification is an ownership claim — it only convinces a judge
        if it is bit-for-bit reproducible.  Module-level ``random.*`` /
        ``np.random.*`` draws share hidden global state (any import
        order or thread interleaving changes results), an unseeded
        ``default_rng()`` is fresh entropy by definition, and inside
        the block-seeded generators of ``repro.traffic``/``repro.faults``
        even a *seeded* ``SeedSequence.spawn`` is banned: spawn mutates
        the parent, so a stream's identity would depend on how many
        siblings were derived before it (PR 6's chunking-invariance
        contract forbids exactly that).

    Instead:
        Thread an explicit seed: ``np.random.default_rng(seed)`` or a
        ``SeedSequence``; derive sub-streams with
        ``repro.traffic.base.child_seed(seed, i)`` — a pure function of
        ``(entropy, spawn_key, index)``.  ``seed=None`` meaning "caller
        wants fresh entropy" is sanctioned only in the
        ``check_random_state``/``as_seed_sequence`` funnels.

    Established by:
        PR 2 (per-tree SeedSequence streams), PR 6 (block-seeding
        contract, docs/traffic.md), PR 9 (repro.faults site streams).
    """

    code = "RPR001"
    name = "seeded-rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        spawn_scoped = ctx.in_package(*_SPAWN_SCOPED)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.resolve_call(node)
            if qual is not None:
                yield from self._check_qualified(ctx, node, qual)
            if spawn_scoped and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "spawn":
                yield self.finding(
                    ctx, node,
                    "SeedSequence.spawn mutates the parent: inside the "
                    "block-seeded generators a stream must be a pure "
                    "function of (seed, index) — use "
                    "repro.traffic.base.child_seed(seed, i)",
                )

    def _check_qualified(
        self, ctx: FileContext, node: ast.Call, qual: str
    ) -> Iterator[Finding]:
        parts = qual.split(".")
        if parts[0] == "random" and len(parts) == 2 \
                and parts[1] not in _STDLIB_RANDOM_OK:
            yield self.finding(
                ctx, node,
                f"module-level {qual}() draws from the interpreter-global "
                "RNG — seed an explicit np.random.default_rng(seed) "
                "(or random.Random(seed)) instead",
            )
        elif parts[:2] == ["numpy", "random"] and len(parts) > 2:
            tail = parts[2]
            if tail not in _NP_RANDOM_OK:
                yield self.finding(
                    ctx, node,
                    f"np.random.{tail}() uses numpy's hidden global "
                    "RandomState — draw from an explicit, seeded "
                    "np.random.default_rng(seed) generator",
                )
            elif tail in ("default_rng", "RandomState") and len(parts) == 3 \
                    and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    f"unseeded np.random.{tail}() is fresh entropy — pass "
                    "a seed (or accept one from the caller and funnel it "
                    "through check_random_state)",
                )


# ----------------------------------------------------------------------
# RPR002 — no wall-clock / entropy nondeterminism in result-producing code
# ----------------------------------------------------------------------

_RESULT_PACKAGES = (
    "repro.core", "repro.trees", "repro.solver", "repro.traffic", "repro.faults",
)
_ENTROPY_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived identity",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.randbelow": "OS entropy",
    "secrets.choice": "OS entropy",
}


@register
class NoWallClockNondeterminism(Rule):
    """No wall-clock or entropy sources in result-producing packages.

    Why:
        ``repro.core``/``trees``/``solver``/``traffic``/``faults``
        produce the artefacts the ownership claim rests on: trained
        forests, verdicts, forged instances, replayable streams.  A
        ``time.time()`` or ``uuid4()`` folded into any of them makes
        two runs of the same experiment diverge — silently, and only
        sometimes.  Monotonic timers (``perf_counter``/``monotonic``)
        are allowed: they feed throughput *reporting*, never results,
        and serve-layer timeouts live outside this rule's scope.

    Instead:
        Derive anything random from the caller's seed
        (``check_random_state`` / ``child_seed``); stamp wall-clock
        metadata outside the result-producing call, at the edge that
        owns it (CLI, benchmark emitter).

    Established by:
        PR 6 (byte-identical streams), PR 9 (seeded fault plans; serve
        timeouts deliberately out of scope), docs/traffic.md.
    """

    code = "RPR002"
    name = "no-wall-clock"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_RESULT_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.resolve_call(node)
            if qual in _ENTROPY_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{qual}() injects {_ENTROPY_CALLS[qual]} into a "
                    "result-producing module — results must be a pure "
                    "function of the caller's seed",
                )


# ----------------------------------------------------------------------
# RPR003 — strict JSON
# ----------------------------------------------------------------------


@register
class StrictJson(Rule):
    """Every ``json.dumps``/``json.dump`` must pass ``allow_nan=False``.

    Why:
        RFC 8259 has no ``Infinity``/``NaN``; Python's encoder emits
        the JavaScript literals unless told otherwise, and downstream
        strict parsers (jq, browsers, ``json.loads`` with a pipeline in
        between) then reject the artefact — far from the producer that
        wrote it.  PR 8 audited every dumps call site after exactly
        this bit a served response.

    Instead:
        Route through ``repro._jsonsafe.dumps`` (which defaults
        ``allow_nan=False`` and pairs with ``finite_or_none``/
        ``json_safe`` for legitimately non-finite values), or pass a
        literal ``allow_nan=False``.

    Established by:
        PR 8 (repro._jsonsafe, "strict JSON everywhere" audit),
        docs/serving.md.
    """

    code = "RPR003"
    name = "strict-json"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.resolve_call(node)
            if qual not in ("json.dumps", "json.dump"):
                continue
            if not self._strict(node):
                yield self.finding(
                    ctx, node,
                    f"{qual}() without a literal allow_nan=False can emit "
                    "non-RFC-8259 Infinity/NaN literals — pass "
                    "allow_nan=False or use repro._jsonsafe.dumps",
                )

    @staticmethod
    def _strict(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "allow_nan":
                return isinstance(kw.value, ast.Constant) and kw.value.value is False
        return False


# ----------------------------------------------------------------------
# RPR004 — atomic artefact writes
# ----------------------------------------------------------------------

_WRITE_SUGAR = {"write_text", "write_bytes"}


@register
class AtomicArtefactWrites(Rule):
    """No bare file writes in the persistence layer outside ``atomic.py``.

    Why:
        A crash (or injected fault) midway through ``open(path, "w")``
        leaves a truncated artefact *at the published path* — the next
        load fails, or worse, a CRC-less format half-parses.  PR 9 made
        every exporter publish via same-directory tempfile + fsync +
        ``os.replace`` so readers see either the old bytes or the new
        bytes, never a prefix.

    Instead:
        ``repro.persistence.atomic.atomic_write(path, mode)`` — the one
        place allowed to open artefact paths for writing (and the one
        place that knows to fsync before renaming).

    Established by:
        PR 9 (crash-safe artefact writes, TestCrashSafeWrites),
        docs/resilience.md.
    """

    code = "RPR004"
    name = "atomic-writes"

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.in_package("repro.persistence")
            and ctx.module != "repro.persistence.atomic"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.resolve_call(node)
            if qual == "open" and self._writes(node):
                yield self.finding(
                    ctx, node,
                    'bare open(path, "w") in the persistence layer can '
                    "publish a torn artefact on crash — route through "
                    "repro.persistence.atomic.atomic_write",
                )
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _WRITE_SUGAR:
                yield self.finding(
                    ctx, node,
                    f".{node.func.attr}() publishes non-atomically — route "
                    "through repro.persistence.atomic.atomic_write",
                )

    @staticmethod
    def _writes(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return False
        if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
            return True  # dynamic mode in persistence code: assume the worst
        return any(flag in mode.value for flag in "wax+")


# ----------------------------------------------------------------------
# RPR005 — picklable-class lock hygiene
# ----------------------------------------------------------------------

_PICKLE_HOOKS = {"__getstate__", "__reduce__", "__reduce_ex__"}
_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "multiprocessing.Lock", "multiprocessing.RLock",
}


@register
class PicklableLockHygiene(Rule):
    """No ``self.<attr> = threading.Lock()`` in classes that pickle themselves.

    Why:
        A lock stored in ``__dict__`` rides along into ``__getstate__``
        and the process-pool pickle path — and locks don't pickle.  The
        failure appears only when the class first crosses a pool
        boundary, far from the line that added the lock (PR 8 hit this
        wiring forests into the serving executor).

    Instead:
        Keep locks in a module-level ``weakref.WeakKeyDictionary`` side
        table keyed by instance — see ``model_lock`` in
        ``repro/trees/compiled.py`` — or exclude them explicitly in
        ``__getstate__`` and re-create them in ``__setstate__``.

    Established by:
        PR 8 (per-model RLocks in a WeakKeyDictionary;
        tests/ensemble/test_thread_safety.py).
    """

    code = "RPR005"
    name = "picklable-locks"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            hooks = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            } & _PICKLE_HOOKS
            if not hooks:
                continue
            for node in ast.walk(cls):
                value = self._assigned_value(node)
                if value is None or not isinstance(value, ast.Call):
                    continue
                qual = ctx.resolve_call(value)
                if qual in _LOCK_FACTORIES:
                    yield self.finding(
                        ctx, node,
                        f"{cls.name} defines {'/'.join(sorted(hooks))} but "
                        f"stores a {qual}() on self — locks don't pickle; "
                        "keep them in a WeakKeyDictionary side table "
                        "(see model_lock in repro/trees/compiled.py)",
                    )

    @staticmethod
    def _assigned_value(node: ast.AST) -> ast.expr | None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            return None
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                return node.value
        return None


# ----------------------------------------------------------------------
# RPR006 — lazy-init race heuristic
# ----------------------------------------------------------------------

_LAZY_PACKAGES = ("repro.ensemble", "repro.trees", "repro.serve")


@register
class LazyInitRace(Rule):
    """``if self._x is None: self._x = ...`` must sit under a lock here.

    Why:
        ``repro.ensemble``/``trees``/``serve`` state is touched by the
        serving daemon's executor threads: an unguarded check-then-set
        lets two threads both see ``None`` and both build — at best
        duplicated work, at worst two engines alive with callers
        holding references to each (PR 8 flushed exactly this out of
        the lazy compile/materialize/presort paths).

    Instead:
        Double-check under the per-instance lock: take ``with
        model_lock(self):`` (or the owning ``self._lock``), re-test,
        then assign — see ``ensure_compiled`` in
        ``repro/trees/compiled.py``.  State provably confined to one
        thread (an asyncio event loop, a mutate-by-contract path) may
        carry a reasoned suppression instead.

    Established by:
        PR 8 (thread-safe lazy compile/materialize/presort;
        tests/ensemble/test_thread_safety.py).
    """

    code = "RPR006"
    name = "lazy-init-race"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_LAZY_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            for attr in self._none_checked_attrs(node.test):
                if self._body_assigns(node.body, attr) \
                        and not ctx.under_lock(node):
                    yield self.finding(
                        ctx, node,
                        f"unguarded lazy init of self.{attr}: two threads "
                        "can both observe None and both build — "
                        "double-check under the instance lock "
                        "(ensure_compiled in repro/trees/compiled.py is "
                        "the pattern)",
                    )

    @staticmethod
    def _none_checked_attrs(test: ast.expr) -> list[str]:
        attrs = []
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare):
                continue
            if len(node.ops) == 1 and isinstance(node.ops[0], ast.Is) \
                    and isinstance(node.comparators[0], ast.Constant) \
                    and node.comparators[0].value is None \
                    and isinstance(node.left, ast.Attribute) \
                    and isinstance(node.left.value, ast.Name) \
                    and node.left.value.id == "self":
                attrs.append(node.left.attr)
        return attrs

    @staticmethod
    def _body_assigns(body: list[ast.stmt], attr: str) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == attr \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        return True
        return False


# ----------------------------------------------------------------------
# RPR007 — fault-hook purity
# ----------------------------------------------------------------------


@register
class FaultHookPurity(Rule):
    """Every ``fault_injector`` parameter must default to ``None``.

    Why:
        Fault injection is a test-only instrument: the production
        default at every site is "no injector, zero overhead", so a
        deployment can never inherit chaos by omission.  A
        ``fault_injector`` parameter with any other default — or none,
        forcing callers to pass something — breaks that contract at
        exactly the call sites too boring for anyone to re-read.

    Instead:
        ``def f(..., fault_injector=None)`` and guard every use with
        ``if fault_injector is not None``.

    Established by:
        PR 9 (explicit fault hooks, production default None),
        docs/resilience.md.
    """

    code = "RPR007"
    name = "fault-hook-purity"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            yield from self._check_args(ctx, node)

    def _check_args(self, ctx, node) -> Iterator[Finding]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        pairs = list(zip(positional, defaults)) + list(
            zip(args.kwonlyargs, args.kw_defaults)
        )
        for arg, default in pairs:
            if arg.arg != "fault_injector":
                continue
            if default is None:
                yield self.finding(
                    ctx, arg,
                    "fault_injector has no default — production call "
                    "sites must be able to omit it (default None)",
                )
            elif not (isinstance(default, ast.Constant) and default.value is None):
                yield self.finding(
                    ctx, arg,
                    "fault_injector must default to None (production = "
                    "no injector, zero overhead) — got "
                    f"{ast.unparse(default)}",
                )
