"""Reporters: human-readable text and strict one-line JSON.

The JSON reporter goes through :mod:`repro._jsonsafe` (RFC 8259 strict,
``allow_nan=False``) and emits exactly one line, so ``repro lint --json
| head -1`` is always parseable — the same pipeline contract the
traffic and serve CLIs honour.
"""

from __future__ import annotations

from .._jsonsafe import dumps as _dumps
from .runner import LintReport

__all__ = ["format_json", "format_text"]


def format_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """``path:line:col: CODE message`` per finding plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}"
        for f in report.unsuppressed
    ]
    if show_suppressed:
        lines.extend(
            f"{f.path}:{f.line}:{f.col}: {f.code} [suppressed: "
            f"{f.suppression_reason}] {f.message}"
            for f in report.suppressed
        )
    n = len(report.unsuppressed)
    lines.append(
        f"{n} finding{'s' if n != 1 else ''} "
        f"({len(report.suppressed)} suppressed) in {report.n_files} file"
        f"{'s' if report.n_files != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """The report as one line of strict JSON (sorted keys, no NaN)."""
    return _dumps(report.to_dict(), sort_keys=True)
