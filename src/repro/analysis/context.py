"""Shared analysis core: parsed source, name resolution, suppressions.

Every rule in :mod:`repro.analysis.rules` sees the same
:class:`FileContext`: the parsed AST, a parent map for ancestry walks
(lock-enclosure checks, class membership), an :class:`ImportMap` that
resolves local names through ``import``/``from``-import aliases to
module-qualified dotted names, and the file's parsed suppression
comments.  Centralising these is what lets each rule stay a small,
declarative ``check`` — and what makes the checker more than a grep:
``from numpy import random as rnd; rnd.shuffle(x)`` and
``np.random.shuffle(x)`` resolve to the same banned name, while a local
``def dumps(...)`` shadowing the stdlib is *not* mistaken for
``json.dumps``.

Suppression syntax
------------------
A finding is silenced in place with::

    risky_call()  # repro: allow[RPR003] reason the contract is met anyway

or, for multi-line statements, on a comment-only line immediately above
the statement's first line.  The bracket takes a comma-separated code
list.  The reason is mandatory: a bare suppression is itself a
violation (``RPR000``), as is a suppression naming an unknown code —
the waiver ledger must stay auditable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "FileContext",
    "Finding",
    "ImportMap",
    "Suppression",
    "dotted_parts",
    "parse_context",
    "parse_suppressions",
]

_SUPPRESSION_RE = re.compile(r"repro:\s*allow\[([^\]]*)\]\s*(.*)\Z")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            data["suppression_reason"] = self.suppression_reason
        return data


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    own_line: bool
    """True when the comment is the only content on its line, which lets
    it cover the statement starting on the *next* line (multi-line
    calls)."""


def parse_suppressions(source: str) -> list[Suppression]:
    """All ``# repro: allow[...]`` comments in *source*, via tokenize.

    Tokenizing (rather than regexing raw lines) means the marker inside
    a string literal is never mistaken for a live suppression.
    """
    suppressions = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(tok.string.lstrip("#").strip())
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            suppressions.append(
                Suppression(
                    line=tok.start[0],
                    codes=codes,
                    reason=match.group(2).strip(),
                    own_line=tok.line[: tok.start[1]].strip() == "",
                )
            )
    except tokenize.TokenError:  # unterminated string etc. — ast will complain
        pass
    return suppressions


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class ImportMap:
    """Local name → module-qualified dotted name, from the file's imports.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from ..traffic.base
    import child_seed`` (inside ``repro.faults.plan``) maps ``child_seed``
    to ``repro.traffic.base.child_seed``.  Names the file binds itself
    (defs, classes, assignments, parameters) are *shadowed*: they never
    resolve, so a local ``open``/``dumps`` helper cannot be confused
    with the builtin or stdlib one.
    """

    def __init__(self, module: str):
        self.module = module
        self.aliases: dict[str, str] = {}
        self.shadowed: set[str] = set()

    # -- construction --------------------------------------------------

    def collect(self, tree: ast.Module) -> "ImportMap":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # `import os.path` binds the *top* package name.
                        top = alias.name.split(".")[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            else:
                self._collect_shadows(node)
        return self

    def _from_base(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: climb `level` packages from this module.
        parts = self.module.split(".") if self.module else []
        anchor = parts[: len(parts) - node.level] if parts else []
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor)

    def _collect_shadows(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.shadowed.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg)),
                ):
                    self.shadowed.add(arg.arg)
        elif isinstance(node, ast.Lambda):
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                self.shadowed.add(arg.arg)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.For, ast.AsyncFor)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.shadowed.add(leaf.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            self.shadowed.add(leaf.id)

    # -- resolution ----------------------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        """The module-qualified dotted name of a Name/Attribute chain.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` under
        ``import numpy as np``; ``None`` when the head is not a module
        name we can account for (``self.x``, shadowed locals, computed
        expressions).
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        head = parts[0]
        if head in self.aliases:
            return ".".join([self.aliases[head], *parts[1:]])
        if head in self.shadowed:
            return None
        # Unbound single names resolve to themselves: builtins (`open`)
        # and names from enclosing scopes we choose not to model.
        return ".".join(parts)


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    imports: ImportMap
    suppressions: list[Suppression]
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    # -- scope helpers -------------------------------------------------

    def in_package(self, *prefixes: str) -> bool:
        """Does this file's module live under any of *prefixes*?"""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        while node in self.parents:
            node = self.parents[node]
            yield node

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def under_lock(self, node: ast.AST) -> bool:
        """Is *node* lexically inside a ``with <something lock-ish>:``?

        Heuristic by design: any enclosing with-item whose expression
        text mentions ``lock`` counts — ``with self._lock:``, ``with
        model_lock(self):``, ``with self._cache_lock():`` all pass.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if "lock" in ast.unparse(item.context_expr).lower():
                        return True
        return False

    def resolve_call(self, node: ast.Call) -> str | None:
        return self.imports.resolve(node.func)


def parse_context(source: str, *, path: Path | str, module: str) -> FileContext:
    """Parse *source* into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return FileContext(
        path=Path(path),
        module=module,
        source=source,
        tree=tree,
        imports=ImportMap(module).collect(tree),
        suppressions=parse_suppressions(source),
        parents=parents,
    )
