"""AST-based contract linter for the repo's own invariants.

Nine PRs of this reproduction built bit-for-bit reproducibility out of
conventions: block-seeded RNG streams, ``allow_nan=False`` JSON, atomic
artefact publication, lock-guarded lazy state, fault hooks defaulting
to ``None``.  This package turns those conventions into machine-checked
contracts — a rule registry (``RPR0xx`` codes) over a shared analysis
core (import-aware name resolution, ancestry/scope tracking, per-line
suppressions with mandatory reasons), surfaced as ``repro lint``.

>>> from repro.analysis import lint_source
>>> lint_source("import json\\njson.dumps({})\\n")[0].code
'RPR003'

The rule catalogue, the *why* behind each contract, and the suppression
syntax live in ``docs/analysis.md``; ``repro lint --explain RPR003``
prints the same rationale at the terminal.
"""

from .context import FileContext, Finding, ImportMap, Suppression, parse_suppressions
from .reporting import format_json, format_text
from .rules import META_CODE, Rule, all_rules, explain, get_rule, known_codes, register
from .runner import LintReport, lint_file, lint_paths, lint_source

__all__ = [
    "FileContext",
    "Finding",
    "ImportMap",
    "LintReport",
    "META_CODE",
    "Rule",
    "Suppression",
    "all_rules",
    "explain",
    "format_json",
    "format_text",
    "get_rule",
    "known_codes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register",
]
