"""``repro lint`` — the CLI face of the contract checker.

Exit-code contract (mirrors the rest of the ``repro`` CLI):

* ``0`` — every checked file is clean (suppressed findings allowed);
* ``1`` — at least one unsuppressed finding;
* ``2`` — usage error (unknown rule code, unreadable path, syntax
  error in a checked file), raised as :class:`ValidationError` and
  mapped by :func:`repro.cli.main`.
"""

from __future__ import annotations

import argparse

from ..exceptions import ValidationError
from .reporting import format_json, format_text
from .rules import explain, known_codes
from .runner import lint_paths

__all__ = ["add_lint_parser", "run_lint"]


def _code_list(value: str) -> list[str]:
    """`--select RPR001,RPR003` and repeated flags both work."""
    return [code.strip() for code in value.split(",") if code.strip()]


def add_lint_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``lint`` subcommand on the top-level CLI parser."""
    cmd = commands.add_parser(
        "lint",
        help="statically check the tree against the repo's determinism, "
        "JSON-safety, atomicity and concurrency contracts",
        description="AST-based contract linter: every RPR0xx rule "
        "mechanises a convention this repo documents and tests "
        "(docs/analysis.md has the catalogue). Exit 0 clean, 1 findings, "
        "2 usage.",
    )
    cmd.add_argument("paths", nargs="*", type=str, metavar="PATH",
                     help="files or directories to lint (recursively)")
    cmd.add_argument("--select", action="append", type=_code_list,
                     default=None, metavar="CODES",
                     help="run only these rule codes (comma list, repeatable)")
    cmd.add_argument("--ignore", action="append", type=_code_list,
                     default=None, metavar="CODES",
                     help="skip these rule codes (comma list, repeatable)")
    cmd.add_argument("--json", action="store_true",
                     help="emit the report as one line of strict JSON")
    cmd.add_argument("--show-suppressed", action="store_true",
                     help="also list suppressed findings with their reasons")
    cmd.add_argument("--explain", default=None, metavar="CODE",
                     help="print a rule's rationale and sanctioned "
                     "alternative, then exit")


def run_lint(args: argparse.Namespace) -> int:
    """Handler for ``repro lint`` (wired up in :mod:`repro.cli`)."""
    if args.explain is not None:
        print(explain(args.explain))  # unknown code -> ValidationError -> 2
        return 0
    if not args.paths:
        raise ValidationError(
            "lint needs at least one path (or --explain CODE); known rules: "
            + ", ".join(known_codes())
        )
    flatten = lambda groups: [c for group in groups for c in group]  # noqa: E731
    report = lint_paths(
        args.paths,
        select=flatten(args.select) if args.select else None,
        ignore=flatten(args.ignore) if args.ignore else None,
    )
    if args.json:
        print(format_json(report))
    else:
        print(format_text(report, show_suppressed=args.show_suppressed))
    return 0 if report.clean else 1
