"""Orchestration: walk paths, lint files, apply suppressions.

The runner is deliberately pure and deterministic — files are visited
in sorted order, findings are sorted by ``(path, line, col, code)``,
and the same tree always produces the same report byte for byte (the
JSON reporter is part of a CI artifact diff).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..exceptions import ValidationError
from .context import FileContext, Finding, Suppression, parse_context
from .rules import META_CODE, all_rules, known_codes

__all__ = ["LintReport", "lint_file", "lint_paths", "lint_source", "select_rules"]


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.unsuppressed

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files": self.n_files,
            "findings": [f.to_dict() for f in self.unsuppressed],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": {
                "findings": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
            },
        }


def select_rules(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
):
    """The active rule objects under ``--select``/``--ignore`` semantics.

    ``select`` limits the run to the named codes (default: all),
    ``ignore`` then removes codes.  Unknown codes are a usage error.
    """
    known = set(known_codes())
    for code in (*(select or ()), *(ignore or ())):
        if code not in known:
            raise ValidationError(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    active = set(select) if select else known
    active -= set(ignore or ())
    return [rule for rule in all_rules() if rule.code in active]


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Files under a ``repro`` package directory get their real module
    name (``repro.persistence.atomic``), which is what package-scoped
    rules key on; anything else (benchmarks, examples, scripts) gets
    its bare stem — outside every package scope by construction.
    """
    parts = list(path.resolve().with_suffix("").parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[idx:]
        if mod_parts[-1] == "__init__":
            mod_parts = mod_parts[:-1]
        return ".".join(mod_parts)
    return "" if path.stem == "__init__" else path.stem


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise ValidationError(f"no such file or directory: {path}")
    return sorted(files)


def _apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Mark findings covered by a same-line (or preceding own-line)
    ``# repro: allow[...]`` comment.  RPR000 is never suppressible."""
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    def matching(finding: Finding) -> Suppression | None:
        for sup in by_line.get(finding.line, ()):
            if finding.code in sup.codes:
                return sup
        for sup in by_line.get(finding.line - 1, ()):
            if sup.own_line and finding.code in sup.codes:
                return sup
        return None

    marked = []
    for finding in findings:
        sup = None if finding.code == META_CODE else matching(finding)
        if sup is not None:
            finding = Finding(
                code=finding.code, path=finding.path, line=finding.line,
                col=finding.col, message=finding.message, suppressed=True,
                suppression_reason=sup.reason or None,
            )
        marked.append(finding)
    return marked


def lint_context(ctx: FileContext, rules=None) -> list[Finding]:
    rules = all_rules() if rules is None else rules
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    findings = _apply_suppressions(findings, ctx.suppressions)
    return sorted(findings, key=Finding.sort_key)


def lint_source(
    source: str,
    *,
    path: str | Path = "<string>",
    module: str = "",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint a source string (the test- and tool-facing entry point).

    ``module`` positions the snippet for package-scoped rules, e.g.
    ``module="repro.persistence.serialize"`` opts it into RPR004.
    """
    rules = select_rules(select, ignore)
    ctx = parse_context(source, path=path, module=module)
    return lint_context(ctx, rules)


def lint_file(
    path: Path | str,
    *,
    module: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read {path}: {exc}") from exc
    try:
        return lint_source(
            source,
            path=path,
            module=module_name_for(path) if module is None else module,
            select=select,
            ignore=ignore,
        )
    except SyntaxError as exc:
        raise ValidationError(
            f"{path} does not parse as Python: {exc.msg} (line {exc.lineno})"
        ) from exc


def lint_paths(
    paths: Sequence[Path | str],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint every ``.py`` file under *paths*; the CLI entry point."""
    select_rules(select, ignore)  # validate codes before touching files
    report = LintReport()
    for path in iter_python_files(paths):
        report.findings.extend(lint_file(path, select=select, ignore=ignore))
        report.n_files += 1
    report.findings.sort(key=Finding.sort_key)
    return report
