"""Cost-complexity pruning of fitted decision trees.

Classic CART weakest-link pruning: for every internal node compute

    g(node) = (R(leaf(node)) - R(subtree)) / (n_leaves(subtree) - 1)

where ``R`` is the weighted misclassification mass recorded in the
leaves' ``class_weights``, and repeatedly collapse the node with the
smallest ``g`` while ``g <= alpha``.

Two consumers in this library:

- substrate completeness — a downstream user of the tree learner gets
  the standard regularisation tool;
- the *pruning attack* on watermarks: an adversary prunes a stolen
  model hoping to destroy the trigger behaviour more cheaply than depth
  truncation (benchmarked in the modification-robustness extension).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError
from .node import InternalNode, Leaf, TreeNode

__all__ = ["prune_cost_complexity", "pruning_path", "subtree_risk"]


def _clone(node: TreeNode) -> TreeNode:
    if node.is_leaf:
        return Leaf(prediction=node.prediction, class_weights=dict(node.class_weights))  # type: ignore[union-attr]
    return InternalNode(
        feature=node.feature,
        threshold=node.threshold,
        left=_clone(node.left),
        right=_clone(node.right),
    )


def _collapse(node: TreeNode) -> Leaf:
    """Merge a subtree into its weighted-majority leaf."""
    totals: dict[int, float] = {}
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            weights = current.class_weights or {current.prediction: 1.0}  # type: ignore[union-attr]
            for label, mass in weights.items():
                totals[label] = totals.get(label, 0.0) + mass
        else:
            stack.append(current.left)
            stack.append(current.right)
    prediction = min(sorted(totals), key=lambda label: (-totals[label], label))
    return Leaf(prediction=int(prediction), class_weights=totals)


def subtree_risk(node: TreeNode) -> tuple[float, int]:
    """Weighted misclassification mass and leaf count of a subtree.

    A leaf's risk is the class mass that disagrees with its prediction.
    Requires populated ``class_weights`` (i.e. learned trees).
    """
    if node.is_leaf:
        weights = node.class_weights  # type: ignore[union-attr]
        if not weights:
            raise ValidationError(
                "cost-complexity pruning needs leaves with class_weights "
                "(hand-built trees cannot be pruned)"
            )
        wrong = sum(mass for label, mass in weights.items() if label != node.prediction)  # type: ignore[union-attr]
        return float(wrong), 1
    left_risk, left_leaves = subtree_risk(node.left)
    right_risk, right_leaves = subtree_risk(node.right)
    return left_risk + right_risk, left_leaves + right_leaves


@dataclass(frozen=True)
class _WeakestLink:
    g: float
    node: InternalNode
    parent: InternalNode | None
    side: str


def _weakest_link(root: TreeNode) -> _WeakestLink | None:
    """Find the internal node with the smallest cost-complexity g."""
    best: _WeakestLink | None = None
    stack: list[tuple[TreeNode, InternalNode | None, str]] = [(root, None, "left")]
    while stack:
        node, parent, side = stack.pop()
        if node.is_leaf:
            continue
        risk, leaves = subtree_risk(node)
        collapsed = _collapse(node)
        leaf_risk, _ = subtree_risk(collapsed)
        g = (leaf_risk - risk) / max(leaves - 1, 1)
        candidate = _WeakestLink(g=g, node=node, parent=parent, side=side)  # type: ignore[arg-type]
        if best is None or candidate.g < best.g:
            best = candidate
        stack.append((node.left, node, "left"))  # type: ignore[arg-type]
        stack.append((node.right, node, "right"))  # type: ignore[arg-type]
    return best


def prune_cost_complexity(root: TreeNode, alpha: float) -> TreeNode:
    """Prune a (copy of a) tree at complexity parameter ``alpha >= 0``.

    Repeatedly collapses the weakest link while its ``g`` does not
    exceed ``alpha``.  ``alpha = 0`` removes only splits that do not
    reduce training risk at all; large ``alpha`` collapses the whole
    tree into a single leaf.
    """
    if alpha < 0:
        raise ValidationError(f"alpha must be >= 0, got {alpha}")
    root = _clone(root)
    while not root.is_leaf:
        link = _weakest_link(root)
        if link is None or link.g > alpha:
            break
        collapsed = _collapse(link.node)
        if link.parent is None:
            root = collapsed
        elif link.side == "left":
            link.parent.left = collapsed
        else:
            link.parent.right = collapsed
    return root


def pruning_path(root: TreeNode) -> list[tuple[float, int]]:
    """The sequence of (alpha, n_leaves) along the full pruning path.

    Mirrors sklearn's ``cost_complexity_pruning_path``: each entry is
    the alpha at which the next collapse happens and the leaf count
    after it; starts at ``(0, n_leaves(root))`` (after zero-cost
    collapses) and ends with a single leaf.
    """
    current = prune_cost_complexity(root, 0.0)
    path = [(0.0, current.n_leaves())]
    while not current.is_leaf:
        link = _weakest_link(current)
        if link is None:
            break
        current = prune_cost_complexity(current, link.g)
        path.append((link.g, current.n_leaves()))
    return path
