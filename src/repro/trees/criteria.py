"""Weighted impurity criteria for decision-tree induction.

The criteria operate on *weighted class-count* arrays.  All functions
accept counts of shape ``(..., n_classes)`` and reduce over the last
axis, so the splitter can evaluate every candidate split position of a
node in a single vectorised call.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "gini_impurity",
    "entropy_impurity",
    "get_criterion",
    "weighted_class_counts",
    "CRITERIA",
]


def weighted_class_counts(
    codes: np.ndarray, weights: np.ndarray, n_classes: int
) -> np.ndarray:
    """Total weight per class: ``out[c] = sum(weights[codes == c])``.

    ``np.bincount`` accumulates its float64 weights sequentially in
    element order — the same order an unbuffered ``np.add.at`` scatter
    uses — so the result is numerically identical to the historical
    ``np.add.at(zeros, codes, weights)`` formulation while running
    measurably faster (single C loop, no ufunc dispatch per element).
    """
    return np.bincount(codes, weights=weights, minlength=n_classes)


def gini_impurity(counts: np.ndarray) -> np.ndarray:
    """Gini impurity ``1 - sum_c p_c^2`` of weighted class counts.

    Empty count vectors (total weight zero) are defined to have impurity
    0 so that degenerate splits score as pure instead of dividing by
    zero; such splits are filtered out by the splitter anyway.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = counts / total[..., None]
        impurity = 1.0 - np.square(probs).sum(axis=-1)
    return np.where(total > 0, impurity, 0.0)


def entropy_impurity(counts: np.ndarray) -> np.ndarray:
    """Shannon entropy (in bits) of weighted class counts.

    Used when splitting by information gain, the alternative criterion
    mentioned in the paper's background section.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = counts / total[..., None]
        logs = np.where(probs > 0, np.log2(np.maximum(probs, 1e-300)), 0.0)
        impurity = -(probs * logs).sum(axis=-1)
    return np.where(total > 0, impurity, 0.0)


CRITERIA = {
    "gini": gini_impurity,
    "entropy": entropy_impurity,
}


def get_criterion(name: str):
    """Look up an impurity function by name (``"gini"`` or ``"entropy"``)."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ValidationError(
            f"unknown criterion {name!r}; expected one of {sorted(CRITERIA)}"
        ) from None
