"""Structural statistics and human-readable export of trees.

The watermark-detection attacks of the paper (Table 2) compare per-tree
depth and leaf counts across an ensemble; :func:`tree_stats` and
:func:`ensemble_structure` compute exactly those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .node import TreeNode, iter_nodes

__all__ = ["TreeStats", "tree_stats", "ensemble_structure", "tree_to_text"]


@dataclass(frozen=True)
class TreeStats:
    """Structural summary of a single decision tree."""

    depth: int
    n_leaves: int
    n_nodes: int
    used_features: frozenset[int]


def tree_stats(root: TreeNode) -> TreeStats:
    """Compute depth, leaf count, node count and feature usage of a tree."""
    n_nodes = 0
    n_leaves = 0
    used: set[int] = set()
    for node in iter_nodes(root):
        n_nodes += 1
        if node.is_leaf:
            n_leaves += 1
        else:
            used.add(node.feature)
    return TreeStats(
        depth=root.depth(),
        n_leaves=n_leaves,
        n_nodes=n_nodes,
        used_features=frozenset(used),
    )


def ensemble_structure(roots: list[TreeNode]) -> dict[str, np.ndarray]:
    """Per-tree structural statistics of an ensemble.

    Returns arrays keyed ``"depth"`` and ``"n_leaves"`` (one entry per
    tree), the two hyper-parameters the paper's detection attack
    inspects.
    """
    stats = [tree_stats(root) for root in roots]
    return {
        "depth": np.array([s.depth for s in stats], dtype=np.float64),
        "n_leaves": np.array([s.n_leaves for s in stats], dtype=np.float64),
    }


def tree_to_text(root: TreeNode, feature_names: list[str] | None = None) -> str:
    """Render a tree as an indented ASCII outline.

    >>> from repro.trees.node import InternalNode, Leaf
    >>> t = InternalNode(0, 0.5, Leaf(-1), Leaf(+1))
    >>> print(tree_to_text(t))
    x0 <= 0.5
      leaf: -1
      leaf: 1
    """

    def name(feature: int) -> str:
        if feature_names is not None:
            return feature_names[feature]
        return f"x{feature}"

    lines: list[str] = []

    def walk(node: TreeNode, indent: int) -> None:
        pad = "  " * indent
        if node.is_leaf:
            lines.append(f"{pad}leaf: {node.prediction}")  # type: ignore[union-attr]
            return
        lines.append(f"{pad}{name(node.feature)} <= {node.threshold:g}")
        walk(node.left, indent + 1)
        walk(node.right, indent + 1)

    walk(root, 0)
    return "\n".join(lines)
