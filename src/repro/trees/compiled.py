"""Compiled flat-array inference for decision trees.

The object-graph traversal in :mod:`repro.trees.node` spends one numpy
operation per *visited node*: prediction cost grows with tree size and
Python overhead, which dominates wall-clock in every benchmark and
attack sweep.  This module flattens a fitted :data:`TreeNode` graph into
a struct-of-arrays table — ``feature[]``, ``threshold[]``, ``left[]``,
``right[]``, ``leaf_value[]`` — over which prediction is a fully
vectorised, iterative descent: one gather-compare-select step per tree
*level*, independent of node count.

Layout conventions (shared with :mod:`repro.ensemble.compiled`, which
packs many trees into one table):

- nodes are stored in **breadth-first order with sibling pairs
  adjacent**: an internal node's right child always sits at
  ``left + 1``.  A single tree's root is index 0.  The adjacency lets
  the descent kernel compute the next node as ``left + (x[f] > v)`` —
  one gather and a boolean add instead of two gathers and a select,
  which is a large fraction of the kernel's memory traffic;
- a leaf stores ``feature = -1``, ``threshold = +inf`` and points
  ``left = right = <its own index>``; during descent a row that has
  reached a leaf compares its value against ``+inf``, goes "left" and
  stays put, so no masking is needed and the loop runs exactly
  ``depth`` iterations;
- ``leaf_value`` carries the leaf payload (class label for
  classification trees, real value for regression trees) and 0 on
  internal nodes;
- ``leaf_proba`` (optional) carries per-leaf class distributions
  aligned to a caller-supplied ``classes`` array, reproducing
  ``predict_proba`` semantics (leaves without recorded class weights
  are one-hot on their label).

The engines accept any consistent ``left``/``right`` table (e.g. a
hand-written serialized artefact): when the sibling-adjacency invariant
does not hold they transparently fall back to a two-gather select
kernel.

The engine is wired behind the sklearn-style estimators with a
lazy-compile-on-first-predict path; the **escape hatch** for debugging
is the backend switch below (``set_inference_backend("object")`` or the
``REPRO_INFERENCE_BACKEND`` environment variable), which routes every
prediction back through the object-graph traversal.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..exceptions import SerializationError, ValidationError
from .node import InternalNode, Leaf, TreeNode

__all__ = [
    "CompiledTree",
    "compile_tree",
    "flatten_tree",
    "leaf_payload",
    "leaf_proba_row",
    "leaf_weight_row",
    "table_depth",
    "validate_node_tables",
    "table_to_node",
    "classification_leaf_builder",
    "cached_engine",
    "lazy_compiled",
    "ensure_compiled",
    "adopt_compiled",
    "model_lock",
    "get_inference_backend",
    "set_inference_backend",
    "inference_backend",
    "MIN_COMPILE_ROWS",
]

#: Batches smaller than this do not trigger lazy compilation: the
#: object-graph path is already cheap there (e.g. the k-instance trigger
#: sets queried inside the embedding re-weighting loop), and compiling a
#: freshly retrained forest per round would cost more than it saves.  An
#: already-compiled model is used whatever the batch size.
MIN_COMPILE_ROWS = 32

_VALID_BACKENDS = ("compiled", "object")


def _initial_backend() -> str:
    value = os.environ.get("REPRO_INFERENCE_BACKEND", "compiled").strip().lower()
    return value if value in _VALID_BACKENDS else "compiled"


_backend = _initial_backend()


def get_inference_backend() -> str:
    """The active inference backend: ``"compiled"`` or ``"object"``."""
    return _backend


def set_inference_backend(name: str) -> None:
    """Select the inference backend globally.

    ``"compiled"`` (default) routes estimator predictions through the
    flat-array engine, lazily compiling fitted models on first use;
    ``"object"`` forces the original object-graph traversal everywhere
    (the debugging escape hatch).
    """
    if name not in _VALID_BACKENDS:
        raise ValidationError(
            f"inference backend must be one of {_VALID_BACKENDS}, got {name!r}"
        )
    global _backend
    _backend = name


@contextmanager
def inference_backend(name: str):
    """Temporarily switch the inference backend (context manager)."""
    previous = get_inference_backend()
    set_inference_backend(name)
    try:
        yield
    finally:
        set_inference_backend(previous)


# ----------------------------------------------------------------------
# Engine caching shared by the estimators
# ----------------------------------------------------------------------
#
# Every estimator stores its engine in ``_compiled_`` and the exact
# root objects it was compiled from in ``_compiled_sources_``.  The
# freshness check is *identity* of those roots: attacks, pruning and
# refits replace root objects rather than mutating nodes in place, so
# replaced roots are detected, and holding strong references means a
# recycled ``id()`` can never alias a dead root.
#
# Compilation and cache adoption are serialized per model: the serving
# daemon (and any caller using threads) can land several first-touch
# predictions on one freshly-loaded model at once, and without a lock
# each would compile its own engine and race on the ``_compiled_`` /
# ``_compiled_sources_`` pair.  The locks live in a module-level weak
# mapping rather than on the instances because estimators are pickled
# into worker processes (``__getstate__`` ships ``__dict__``) and lock
# objects cannot cross that boundary.

_MODEL_LOCKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MODEL_LOCKS_GUARD = threading.Lock()


def model_lock(model) -> threading.RLock:
    """The per-model lock serializing compile/materialize for ``model``.

    Reentrant because compiling can re-enter through the same model: a
    lazy-restored forest's ``builder()`` touches ``trees_``, which
    triggers ``_materialize_trees`` under the same lock.
    """
    lock = _MODEL_LOCKS.get(model)
    if lock is None:
        with _MODEL_LOCKS_GUARD:
            lock = _MODEL_LOCKS.get(model)
            if lock is None:
                lock = threading.RLock()
                _MODEL_LOCKS[model] = lock
    return lock


def cached_engine(model, sources: tuple):
    """The model's cached engine if compiled from exactly ``sources``."""
    engine = model._compiled_
    held = model._compiled_sources_
    if (
        engine is not None
        and held is not None
        and len(held) == len(sources)
        and all(a is b for a, b in zip(held, sources))
    ):
        return engine
    return None


def adopt_compiled(model, sources: tuple, engine):
    """Install ``engine`` as the model's cache, pinned to ``sources``."""
    model._compiled_ = engine
    model._compiled_sources_ = tuple(sources)
    return engine


def ensure_compiled(model, sources: tuple, builder):
    """The cached engine, compiling via ``builder()`` if stale/absent.

    Thread-safe: concurrent callers double-check under the per-model
    lock, so exactly one thread runs ``builder()`` and the losers adopt
    the winner's engine.
    """
    engine = cached_engine(model, sources)
    if engine is None:
        with model_lock(model):
            engine = cached_engine(model, sources)
            if engine is None:
                engine = adopt_compiled(model, sources, builder())
    return engine


def lazy_compiled(model, sources: tuple, n_rows: int, builder):
    """The engine a prediction call should use, or ``None`` for object mode.

    Lazily compiles on the first batch of at least
    :data:`MIN_COMPILE_ROWS` rows; smaller batches fall back to the
    object-graph traversal unless an engine is already cached.
    Compilation is serialized per model, like :func:`ensure_compiled`.
    """
    if get_inference_backend() != "compiled":
        return None
    engine = cached_engine(model, sources)
    if engine is not None:
        return engine
    if n_rows < MIN_COMPILE_ROWS:
        return None
    with model_lock(model):
        engine = cached_engine(model, sources)
        if engine is None:
            engine = adopt_compiled(model, sources, builder())
    return engine


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------


def leaf_payload(node) -> float:
    """The scalar a leaf emits: its class label or regression value."""
    prediction = getattr(node, "prediction", None)
    if prediction is not None:
        return float(prediction)
    return float(node.value)


def leaf_proba_row(node, class_position: dict[int, int]) -> np.ndarray:
    """Per-leaf class distribution aligned to ``class_position``.

    Mirrors ``DecisionTreeClassifier.predict_proba``: the recorded class
    masses normalised by their total, or a one-hot row on the leaf label
    when no masses were recorded (hand-built trees).
    """
    row = np.zeros(len(class_position), dtype=np.float64)
    weights = getattr(node, "class_weights", None) or {}
    total = float(sum(weights.values()))
    try:
        if total > 0:
            for label, mass in weights.items():
                row[class_position[int(label)]] = mass / total
        else:
            row[class_position[int(node.prediction)]] = 1.0
    except KeyError as exc:
        raise ValidationError(
            f"leaf label {exc.args[0]!r} is not in the classes array"
        ) from exc
    return row


def leaf_weight_row(node, class_position: dict[int, int]) -> np.ndarray:
    """Per-leaf *raw* class masses aligned to ``class_position``.

    Unlike :func:`leaf_proba_row` this keeps the unnormalised training
    masses, so the leaf's ``class_weights`` dict can be rebuilt exactly
    from the table (the bijection the binary persistence format relies
    on).  Leaves without recorded masses yield an all-zero row.
    """
    row = np.zeros(len(class_position), dtype=np.float64)
    weights = getattr(node, "class_weights", None) or {}
    try:
        for label, mass in weights.items():
            row[class_position[int(label)]] = mass
    except KeyError as exc:
        raise ValidationError(
            f"leaf label {exc.args[0]!r} is not in the classes array"
        ) from exc
    return row


def flatten_tree(
    root,
    *,
    feature: list,
    threshold: list,
    left: list,
    right: list,
    leaf_value: list,
    leaf_proba: list | None = None,
    leaf_weight: list | None = None,
    class_position: dict[int, int] | None = None,
) -> tuple[int, int]:
    """Append the subtree at ``root`` to the array-builder lists.

    Works for both node families (classification ``Leaf`` /
    ``InternalNode`` and the regression tree's private nodes) via their
    shared ``is_leaf`` protocol.  Nodes are laid out breadth-first with
    each sibling pair allocated adjacently (``right == left + 1``), the
    invariant the fast descent kernel relies on; the traversal is
    iterative and safe for arbitrarily deep trees.

    Returns ``(root_index, depth)`` of the appended subtree.
    """

    def allocate() -> int:
        index = len(feature)
        feature.append(-1)
        threshold.append(np.inf)
        left.append(index)
        right.append(index)
        leaf_value.append(0.0)
        if leaf_proba is not None:
            leaf_proba.append(None)
        if leaf_weight is not None:
            leaf_weight.append(None)
        return index

    def zeros_row() -> np.ndarray:
        return np.zeros(len(class_position), dtype=np.float64)

    root_index = allocate()
    max_depth = 0
    # (node, preallocated slot, depth); FIFO order keeps levels together.
    queue = deque([(root, root_index, 0)])
    while queue:
        node, slot, depth = queue.popleft()
        if depth > max_depth:
            max_depth = depth
        if node.is_leaf:
            leaf_value[slot] = leaf_payload(node)
            if leaf_proba is not None:
                leaf_proba[slot] = leaf_proba_row(node, class_position)
            if leaf_weight is not None:
                leaf_weight[slot] = leaf_weight_row(node, class_position)
        else:
            left_slot = allocate()
            right_slot = allocate()
            feature[slot] = int(node.feature)
            threshold[slot] = float(node.threshold)
            left[slot] = left_slot
            right[slot] = right_slot
            if leaf_proba is not None:
                leaf_proba[slot] = zeros_row()
            if leaf_weight is not None:
                leaf_weight[slot] = zeros_row()
            queue.append((node.left, left_slot, depth + 1))
            queue.append((node.right, right_slot, depth + 1))
    for rows in (leaf_proba, leaf_weight):
        if rows is not None:
            for index in range(root_index, len(rows)):
                if rows[index] is None:  # pragma: no cover - defensive
                    rows[index] = zeros_row()
    return root_index, max_depth


# ----------------------------------------------------------------------
# The canonical node-table contract
# ----------------------------------------------------------------------
#
# A *node table* is the struct-of-arrays form every engine, exporter and
# solver bridge agrees on: ``feature``/``threshold``/``left``/``right``/
# ``leaf_value`` (plus optional ``classes``/``leaf_proba``/``leaf_weight``)
# and a ``roots`` array locating each tree.  ``validate_node_tables``
# is the single gatekeeper for tables arriving from outside the process
# (deserialised JSON, binary files, hand-built arrays); ``table_to_node``
# is the inverse of :func:`flatten_tree`, rebuilding the auditable
# object graph from table rows.


def table_depth(feature, left, right, roots) -> int:
    """Depth of the deepest internal node reachable from ``roots``.

    Level-synchronous frontier walk over the node arrays; bounded by
    the table size so a (malformed) cyclic table raises instead of
    looping forever.
    """
    n_nodes = np.asarray(feature).shape[0]
    visited = np.zeros(n_nodes, dtype=bool)
    frontier = np.unique(np.asarray(roots, dtype=np.int64))
    visited[frontier] = True
    for depth in range(n_nodes + 1):
        internal = frontier[feature[frontier] >= 0]
        if internal.size == 0:
            return depth
        children = np.concatenate([left[internal], right[internal]])
        if visited[children].any():
            raise SerializationError("compiled node table contains a cycle")
        level = np.zeros(n_nodes, dtype=bool)
        level[children] = True
        visited |= level
        frontier = np.flatnonzero(level)
    raise SerializationError("compiled node table contains a cycle")


def validate_node_tables(
    *,
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    leaf_value: np.ndarray,
    roots: np.ndarray,
    depth: int,
    classes: np.ndarray | None = None,
    leaf_proba: np.ndarray | None = None,
    leaf_weight: np.ndarray | None = None,
) -> None:
    """Structural validation of a node table from an untrusted source.

    Checks array-length agreement, index bounds, leaf-value dtype, the
    recorded depth against an actual frontier walk (which also rejects
    cyclic tables) and the probability/weight row shapes.  Raises
    :class:`~repro.exceptions.SerializationError` on the first problem;
    messages are stable — the persistence tests pin them.
    """
    n_nodes = feature.shape[0]
    arrays_consistent = (
        threshold.shape[0] == n_nodes
        and left.shape[0] == n_nodes
        and right.shape[0] == n_nodes
        and leaf_value.shape[0] == n_nodes
    )
    if not arrays_consistent:
        raise SerializationError("compiled node arrays disagree on length")
    for name, indices in (("roots", roots), ("left", left), ("right", right)):
        if n_nodes == 0 or indices.min() < 0 or indices.max() >= n_nodes:
            raise SerializationError(
                f"compiled {name} indices fall outside the node table"
            )
    actual_depth = table_depth(feature, left, right, roots)
    if int(depth) != actual_depth:
        raise SerializationError(
            f"compiled depth {int(depth)} disagrees with the node table "
            f"(actual {actual_depth})"
        )
    if leaf_value.dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
        raise SerializationError(
            f"compiled leaf_value_dtype must be 'int64' or 'float64', "
            f"got {leaf_value.dtype.name!r}"
        )
    if classes is not None:
        classes = np.asarray(classes)
    for name, rows in (("leaf_proba", leaf_proba), ("leaf_weight", leaf_weight)):
        if rows is None:
            continue
        rows = np.asarray(rows)
        if classes is None:
            raise SerializationError(
                f"compiled {name} requires a classes array"
            )
        if rows.shape != (n_nodes, classes.shape[0]):
            raise SerializationError(
                f"compiled {name} must have shape "
                f"({n_nodes}, {classes.shape[0]}), got {rows.shape}"
            )


def table_to_node(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    root_index: int,
    make_leaf,
    make_internal=None,
):
    """Rebuild the object tree rooted at table row ``root_index``.

    The inverse of :func:`flatten_tree`: every internal row becomes an
    :class:`~repro.trees.node.InternalNode` (or whatever
    ``make_internal(index, left_child, right_child)`` builds) and every
    leaf row becomes ``make_leaf(index)``.  The traversal is iterative —
    children are constructed before their parents by walking the
    pre-order node list in reverse — so arbitrarily deep trees rebuild
    without touching the recursion limit.  A row visited twice (a cyclic
    or node-sharing table) raises :class:`SerializationError`.
    """
    if make_internal is None:
        def make_internal(index, left_child, right_child):
            return InternalNode(
                feature=int(feature[index]),
                threshold=float(threshold[index]),
                left=left_child,
                right=right_child,
            )

    n_nodes = feature.shape[0]
    order: list[int] = []
    stack = [int(root_index)]
    while stack:
        index = stack.pop()
        order.append(index)
        if len(order) > n_nodes:
            raise SerializationError(
                "compiled node table revisits a node during reconstruction "
                "(cycle or shared subtree)"
            )
        if feature[index] >= 0:
            stack.append(int(right[index]))
            stack.append(int(left[index]))
    built: dict[int, object] = {}
    for index in reversed(order):
        if feature[index] < 0:
            built[index] = make_leaf(index)
        else:
            built[index] = make_internal(
                index, built[int(left[index])], built[int(right[index])]
            )
    return built[int(root_index)]


def classification_leaf_builder(leaf_value, classes, leaf_weight=None):
    """A ``make_leaf`` for :func:`table_to_node` producing :class:`Leaf`.

    With a ``leaf_weight`` section the leaf's ``class_weights`` dict is
    rebuilt exactly (labels in ``classes`` order, zero-mass labels
    omitted — the same shape :func:`repro.trees.growth` emits); without
    it leaves come back with empty ``class_weights``, like hand-built
    trees.
    """
    labels = [int(c) for c in classes] if classes is not None else []

    def make_leaf(index: int) -> Leaf:
        weights: dict[int, float] = {}
        if leaf_weight is not None:
            row = leaf_weight[index]
            weights = {
                labels[c]: float(row[c])
                for c in range(len(labels))
                if row[c] > 0
            }
        return Leaf(prediction=int(leaf_value[index]), class_weights=weights)

    return make_leaf


# ----------------------------------------------------------------------
# The descent kernel
# ----------------------------------------------------------------------

#: Samples are processed in column chunks of this size so the per-level
#: temporaries stay cache-resident; measured ~15-25% faster than a
#: single full-width pass at 10k-row batches.
_COLUMN_CHUNK = 4096


def _descend(table, X: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Advance every state in ``idx`` to its leaf (in place per level).

    ``table`` is a :class:`CompiledTree` or a compiled ensemble (any
    object with ``depth`` / ``threshold`` / ``left`` / ``right`` plus
    the derived ``_gather_feature`` / ``_adjacent`` attributes); ``X``
    must be a C-contiguous float64 chunk and ``idx`` an int64 state
    array of shape ``(n,)`` or ``(n_trees, n)`` holding current node
    indices.

    The kernel is written for numpy's fast paths: flat ``take`` gathers
    with int64 indices, buffers reused via ``out=``, and — on
    sibling-adjacent tables — the next node computed as
    ``left + (x[f] > v)``, avoiding a second child gather and a select.
    """
    n, d = X.shape
    X_flat = X.ravel()
    row_offset = np.arange(n, dtype=np.int64) * d
    if idx.ndim == 2:
        row_offset = row_offset[None, :]
    gather_feature = table._gather_feature
    threshold = table.threshold
    left = table.left
    if table._adjacent:
        for _ in range(table.depth):
            feat = gather_feature.take(idx)
            np.add(feat, row_offset, out=feat)
            chosen = X_flat.take(feat)
            go_right = np.greater(chosen, threshold.take(idx))
            nxt = left.take(idx)
            np.add(nxt, go_right, out=nxt)
            idx = nxt
    else:
        right = table.right
        for _ in range(table.depth):
            feat = gather_feature.take(idx)
            np.add(feat, row_offset, out=feat)
            chosen = X_flat.take(feat)
            go_left = np.less_equal(chosen, threshold.take(idx))
            idx = np.where(go_left, left.take(idx), right.take(idx))
    return idx


# ----------------------------------------------------------------------
# The compiled single-tree engine
# ----------------------------------------------------------------------


@dataclass
class CompiledTree:
    """Struct-of-arrays representation of one decision tree.

    Produced by :func:`compile_tree`; see the module docstring for the
    layout conventions.  ``classes`` / ``leaf_proba`` are present only
    when the tree was compiled with a classes array.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_value: np.ndarray
    depth: int
    classes: np.ndarray | None = None
    leaf_proba: np.ndarray | None = None

    def __post_init__(self) -> None:
        # Leaves keep feature = -1 in the public array; the descent
        # gathers column 0 for them (the +inf threshold routes the row
        # back onto the leaf regardless of the value read).
        self._gather_feature = np.where(self.feature >= 0, self.feature, 0)
        # Sibling adjacency enables the one-gather child step; tables
        # built by flatten_tree always satisfy it, hand-made ones may not.
        self._adjacent = bool(
            np.all((self.feature < 0) | (self.right == self.left + 1))
        )

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``X`` (vectorised descent)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        n = X.shape[0]
        if self.depth == 0 or n == 0:
            return np.zeros(n, dtype=np.int64)
        out = np.empty(n, dtype=np.int64)
        for start in range(0, n, _COLUMN_CHUNK):
            stop = min(start + _COLUMN_CHUNK, n)
            out[start:stop] = _descend(
                self, X[start:stop], np.zeros(stop - start, dtype=np.int64)
            )
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf payloads for ``X`` — labels (int64) or values (float64)."""
        return self.leaf_value[self.apply(X)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-row class distributions, columns ordered as ``classes``."""
        if self.leaf_proba is None:
            raise ValidationError(
                "this CompiledTree was compiled without a classes array; "
                "recompile with classes to enable predict_proba"
            )
        return self.leaf_proba[self.apply(X)]

    # -- the canonical tables contract ---------------------------------

    def to_tables(self) -> dict:
        """The node table as a plain dict of arrays (plus scalars).

        The keys mirror the dataclass fields with an implicit
        single-tree ``roots = [0]``; the dict round-trips through
        :meth:`from_tables`.
        """
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left,
            "right": self.right,
            "leaf_value": self.leaf_value,
            "depth": int(self.depth),
            "classes": self.classes,
            "leaf_proba": self.leaf_proba,
        }

    @classmethod
    def from_tables(cls, tables: dict) -> "CompiledTree":
        """Build (and validate) a tree engine from a tables dict."""
        feature = np.asarray(tables["feature"], dtype=np.int64)
        validate_node_tables(
            feature=feature,
            threshold=np.asarray(tables["threshold"], dtype=np.float64),
            left=np.asarray(tables["left"], dtype=np.int64),
            right=np.asarray(tables["right"], dtype=np.int64),
            leaf_value=np.asarray(tables["leaf_value"]),
            roots=np.zeros(1, dtype=np.int64),
            depth=int(tables["depth"]),
            classes=tables.get("classes"),
            leaf_proba=tables.get("leaf_proba"),
        )
        return cls(
            feature=feature,
            threshold=np.asarray(tables["threshold"], dtype=np.float64),
            left=np.asarray(tables["left"], dtype=np.int64),
            right=np.asarray(tables["right"], dtype=np.int64),
            leaf_value=np.asarray(tables["leaf_value"]),
            depth=int(tables["depth"]),
            classes=tables.get("classes"),
            leaf_proba=tables.get("leaf_proba"),
        )

    def to_node(self, leaf_weight=None) -> TreeNode:
        """Rebuild the classification object tree this table encodes."""
        return table_to_node(
            self.feature,
            self.threshold,
            self.left,
            self.right,
            0,
            classification_leaf_builder(self.leaf_value, self.classes, leaf_weight),
        )


def compile_tree(
    root: TreeNode, classes=None, value_dtype=np.int64
) -> CompiledTree:
    """Flatten a ``TreeNode`` graph into a :class:`CompiledTree`.

    Parameters
    ----------
    root:
        The tree to compile (classification or regression node family).
    classes:
        Optional sorted label array; when given, per-leaf probability
        rows aligned to it are built so ``predict_proba`` works.
    value_dtype:
        dtype of ``leaf_value`` — ``int64`` for classification labels
        (the default, matching the object-graph ``predict_batch``),
        ``float64`` for regression leaf values.
    """
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    leaf_value: list = []
    class_position = None
    proba_rows: list | None = None
    if classes is not None:
        classes = np.asarray(classes)
        class_position = {int(c): i for i, c in enumerate(classes)}
        proba_rows = []

    _, depth = flatten_tree(
        root,
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        leaf_value=leaf_value,
        leaf_proba=proba_rows,
        class_position=class_position,
    )
    return CompiledTree(
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_value=np.asarray(leaf_value, dtype=value_dtype),
        depth=depth,
        classes=classes,
        leaf_proba=np.asarray(proba_rows, dtype=np.float64)
        if proba_rows is not None
        else None,
    )
