"""Compiled flat-array inference for decision trees.

The object-graph traversal in :mod:`repro.trees.node` spends one numpy
operation per *visited node*: prediction cost grows with tree size and
Python overhead, which dominates wall-clock in every benchmark and
attack sweep.  This module flattens a fitted :data:`TreeNode` graph into
a struct-of-arrays table — ``feature[]``, ``threshold[]``, ``left[]``,
``right[]``, ``leaf_value[]`` — over which prediction is a fully
vectorised, iterative descent: one gather-compare-select step per tree
*level*, independent of node count.

Layout conventions (shared with :mod:`repro.ensemble.compiled`, which
packs many trees into one table):

- nodes are stored in **breadth-first order with sibling pairs
  adjacent**: an internal node's right child always sits at
  ``left + 1``.  A single tree's root is index 0.  The adjacency lets
  the descent kernel compute the next node as ``left + (x[f] > v)`` —
  one gather and a boolean add instead of two gathers and a select,
  which is a large fraction of the kernel's memory traffic;
- a leaf stores ``feature = -1``, ``threshold = +inf`` and points
  ``left = right = <its own index>``; during descent a row that has
  reached a leaf compares its value against ``+inf``, goes "left" and
  stays put, so no masking is needed and the loop runs exactly
  ``depth`` iterations;
- ``leaf_value`` carries the leaf payload (class label for
  classification trees, real value for regression trees) and 0 on
  internal nodes;
- ``leaf_proba`` (optional) carries per-leaf class distributions
  aligned to a caller-supplied ``classes`` array, reproducing
  ``predict_proba`` semantics (leaves without recorded class weights
  are one-hot on their label).

The engines accept any consistent ``left``/``right`` table (e.g. a
hand-written serialized artefact): when the sibling-adjacency invariant
does not hold they transparently fall back to a two-gather select
kernel.

The engine is wired behind the sklearn-style estimators with a
lazy-compile-on-first-predict path; the **escape hatch** for debugging
is the backend switch below (``set_inference_backend("object")`` or the
``REPRO_INFERENCE_BACKEND`` environment variable), which routes every
prediction back through the object-graph traversal.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from .node import TreeNode

__all__ = [
    "CompiledTree",
    "compile_tree",
    "flatten_tree",
    "leaf_payload",
    "leaf_proba_row",
    "cached_engine",
    "lazy_compiled",
    "ensure_compiled",
    "adopt_compiled",
    "get_inference_backend",
    "set_inference_backend",
    "inference_backend",
    "MIN_COMPILE_ROWS",
]

#: Batches smaller than this do not trigger lazy compilation: the
#: object-graph path is already cheap there (e.g. the k-instance trigger
#: sets queried inside the embedding re-weighting loop), and compiling a
#: freshly retrained forest per round would cost more than it saves.  An
#: already-compiled model is used whatever the batch size.
MIN_COMPILE_ROWS = 32

_VALID_BACKENDS = ("compiled", "object")


def _initial_backend() -> str:
    value = os.environ.get("REPRO_INFERENCE_BACKEND", "compiled").strip().lower()
    return value if value in _VALID_BACKENDS else "compiled"


_backend = _initial_backend()


def get_inference_backend() -> str:
    """The active inference backend: ``"compiled"`` or ``"object"``."""
    return _backend


def set_inference_backend(name: str) -> None:
    """Select the inference backend globally.

    ``"compiled"`` (default) routes estimator predictions through the
    flat-array engine, lazily compiling fitted models on first use;
    ``"object"`` forces the original object-graph traversal everywhere
    (the debugging escape hatch).
    """
    if name not in _VALID_BACKENDS:
        raise ValidationError(
            f"inference backend must be one of {_VALID_BACKENDS}, got {name!r}"
        )
    global _backend
    _backend = name


@contextmanager
def inference_backend(name: str):
    """Temporarily switch the inference backend (context manager)."""
    previous = get_inference_backend()
    set_inference_backend(name)
    try:
        yield
    finally:
        set_inference_backend(previous)


# ----------------------------------------------------------------------
# Engine caching shared by the estimators
# ----------------------------------------------------------------------
#
# Every estimator stores its engine in ``_compiled_`` and the exact
# root objects it was compiled from in ``_compiled_sources_``.  The
# freshness check is *identity* of those roots: attacks, pruning and
# refits replace root objects rather than mutating nodes in place, so
# replaced roots are detected, and holding strong references means a
# recycled ``id()`` can never alias a dead root.


def cached_engine(model, sources: tuple):
    """The model's cached engine if compiled from exactly ``sources``."""
    engine = model._compiled_
    held = model._compiled_sources_
    if (
        engine is not None
        and held is not None
        and len(held) == len(sources)
        and all(a is b for a, b in zip(held, sources))
    ):
        return engine
    return None


def adopt_compiled(model, sources: tuple, engine):
    """Install ``engine`` as the model's cache, pinned to ``sources``."""
    model._compiled_ = engine
    model._compiled_sources_ = tuple(sources)
    return engine


def ensure_compiled(model, sources: tuple, builder):
    """The cached engine, compiling via ``builder()`` if stale/absent."""
    engine = cached_engine(model, sources)
    if engine is None:
        engine = adopt_compiled(model, sources, builder())
    return engine


def lazy_compiled(model, sources: tuple, n_rows: int, builder):
    """The engine a prediction call should use, or ``None`` for object mode.

    Lazily compiles on the first batch of at least
    :data:`MIN_COMPILE_ROWS` rows; smaller batches fall back to the
    object-graph traversal unless an engine is already cached.
    """
    if get_inference_backend() != "compiled":
        return None
    engine = cached_engine(model, sources)
    if engine is not None:
        return engine
    if n_rows < MIN_COMPILE_ROWS:
        return None
    return adopt_compiled(model, sources, builder())


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------


def leaf_payload(node) -> float:
    """The scalar a leaf emits: its class label or regression value."""
    prediction = getattr(node, "prediction", None)
    if prediction is not None:
        return float(prediction)
    return float(node.value)


def leaf_proba_row(node, class_position: dict[int, int]) -> np.ndarray:
    """Per-leaf class distribution aligned to ``class_position``.

    Mirrors ``DecisionTreeClassifier.predict_proba``: the recorded class
    masses normalised by their total, or a one-hot row on the leaf label
    when no masses were recorded (hand-built trees).
    """
    row = np.zeros(len(class_position), dtype=np.float64)
    weights = getattr(node, "class_weights", None) or {}
    total = float(sum(weights.values()))
    try:
        if total > 0:
            for label, mass in weights.items():
                row[class_position[int(label)]] = mass / total
        else:
            row[class_position[int(node.prediction)]] = 1.0
    except KeyError as exc:
        raise ValidationError(
            f"leaf label {exc.args[0]!r} is not in the classes array"
        ) from exc
    return row


def flatten_tree(
    root,
    *,
    feature: list,
    threshold: list,
    left: list,
    right: list,
    leaf_value: list,
    leaf_proba: list | None = None,
    class_position: dict[int, int] | None = None,
) -> tuple[int, int]:
    """Append the subtree at ``root`` to the array-builder lists.

    Works for both node families (classification ``Leaf`` /
    ``InternalNode`` and the regression tree's private nodes) via their
    shared ``is_leaf`` protocol.  Nodes are laid out breadth-first with
    each sibling pair allocated adjacently (``right == left + 1``), the
    invariant the fast descent kernel relies on; the traversal is
    iterative and safe for arbitrarily deep trees.

    Returns ``(root_index, depth)`` of the appended subtree.
    """

    def allocate() -> int:
        index = len(feature)
        feature.append(-1)
        threshold.append(np.inf)
        left.append(index)
        right.append(index)
        leaf_value.append(0.0)
        if leaf_proba is not None:
            leaf_proba.append(None)
        return index

    root_index = allocate()
    max_depth = 0
    # (node, preallocated slot, depth); FIFO order keeps levels together.
    queue = deque([(root, root_index, 0)])
    while queue:
        node, slot, depth = queue.popleft()
        if depth > max_depth:
            max_depth = depth
        if node.is_leaf:
            leaf_value[slot] = leaf_payload(node)
            if leaf_proba is not None:
                leaf_proba[slot] = leaf_proba_row(node, class_position)
        else:
            left_slot = allocate()
            right_slot = allocate()
            feature[slot] = int(node.feature)
            threshold[slot] = float(node.threshold)
            left[slot] = left_slot
            right[slot] = right_slot
            if leaf_proba is not None:
                leaf_proba[slot] = np.zeros(len(class_position), dtype=np.float64)
            queue.append((node.left, left_slot, depth + 1))
            queue.append((node.right, right_slot, depth + 1))
    if leaf_proba is not None:
        for index in range(root_index, len(leaf_proba)):
            if leaf_proba[index] is None:  # pragma: no cover - defensive
                leaf_proba[index] = np.zeros(len(class_position), dtype=np.float64)
    return root_index, max_depth


# ----------------------------------------------------------------------
# The descent kernel
# ----------------------------------------------------------------------

#: Samples are processed in column chunks of this size so the per-level
#: temporaries stay cache-resident; measured ~15-25% faster than a
#: single full-width pass at 10k-row batches.
_COLUMN_CHUNK = 4096


def _descend(table, X: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Advance every state in ``idx`` to its leaf (in place per level).

    ``table`` is a :class:`CompiledTree` or a compiled ensemble (any
    object with ``depth`` / ``threshold`` / ``left`` / ``right`` plus
    the derived ``_gather_feature`` / ``_adjacent`` attributes); ``X``
    must be a C-contiguous float64 chunk and ``idx`` an int64 state
    array of shape ``(n,)`` or ``(n_trees, n)`` holding current node
    indices.

    The kernel is written for numpy's fast paths: flat ``take`` gathers
    with int64 indices, buffers reused via ``out=``, and — on
    sibling-adjacent tables — the next node computed as
    ``left + (x[f] > v)``, avoiding a second child gather and a select.
    """
    n, d = X.shape
    X_flat = X.ravel()
    row_offset = np.arange(n, dtype=np.int64) * d
    if idx.ndim == 2:
        row_offset = row_offset[None, :]
    gather_feature = table._gather_feature
    threshold = table.threshold
    left = table.left
    if table._adjacent:
        for _ in range(table.depth):
            feat = gather_feature.take(idx)
            np.add(feat, row_offset, out=feat)
            chosen = X_flat.take(feat)
            go_right = np.greater(chosen, threshold.take(idx))
            nxt = left.take(idx)
            np.add(nxt, go_right, out=nxt)
            idx = nxt
    else:
        right = table.right
        for _ in range(table.depth):
            feat = gather_feature.take(idx)
            np.add(feat, row_offset, out=feat)
            chosen = X_flat.take(feat)
            go_left = np.less_equal(chosen, threshold.take(idx))
            idx = np.where(go_left, left.take(idx), right.take(idx))
    return idx


# ----------------------------------------------------------------------
# The compiled single-tree engine
# ----------------------------------------------------------------------


@dataclass
class CompiledTree:
    """Struct-of-arrays representation of one decision tree.

    Produced by :func:`compile_tree`; see the module docstring for the
    layout conventions.  ``classes`` / ``leaf_proba`` are present only
    when the tree was compiled with a classes array.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_value: np.ndarray
    depth: int
    classes: np.ndarray | None = None
    leaf_proba: np.ndarray | None = None

    def __post_init__(self) -> None:
        # Leaves keep feature = -1 in the public array; the descent
        # gathers column 0 for them (the +inf threshold routes the row
        # back onto the leaf regardless of the value read).
        self._gather_feature = np.where(self.feature >= 0, self.feature, 0)
        # Sibling adjacency enables the one-gather child step; tables
        # built by flatten_tree always satisfy it, hand-made ones may not.
        self._adjacent = bool(
            np.all((self.feature < 0) | (self.right == self.left + 1))
        )

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``X`` (vectorised descent)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        n = X.shape[0]
        if self.depth == 0 or n == 0:
            return np.zeros(n, dtype=np.int64)
        out = np.empty(n, dtype=np.int64)
        for start in range(0, n, _COLUMN_CHUNK):
            stop = min(start + _COLUMN_CHUNK, n)
            out[start:stop] = _descend(
                self, X[start:stop], np.zeros(stop - start, dtype=np.int64)
            )
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf payloads for ``X`` — labels (int64) or values (float64)."""
        return self.leaf_value[self.apply(X)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-row class distributions, columns ordered as ``classes``."""
        if self.leaf_proba is None:
            raise ValidationError(
                "this CompiledTree was compiled without a classes array; "
                "recompile with classes to enable predict_proba"
            )
        return self.leaf_proba[self.apply(X)]


def compile_tree(
    root: TreeNode, classes=None, value_dtype=np.int64
) -> CompiledTree:
    """Flatten a ``TreeNode`` graph into a :class:`CompiledTree`.

    Parameters
    ----------
    root:
        The tree to compile (classification or regression node family).
    classes:
        Optional sorted label array; when given, per-leaf probability
        rows aligned to it are built so ``predict_proba`` works.
    value_dtype:
        dtype of ``leaf_value`` — ``int64`` for classification labels
        (the default, matching the object-graph ``predict_batch``),
        ``float64`` for regression leaf values.
    """
    feature: list = []
    threshold: list = []
    left: list = []
    right: list = []
    leaf_value: list = []
    class_position = None
    proba_rows: list | None = None
    if classes is not None:
        classes = np.asarray(classes)
        class_position = {int(c): i for i, c in enumerate(classes)}
        proba_rows = []

    _, depth = flatten_tree(
        root,
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        leaf_value=leaf_value,
        leaf_proba=proba_rows,
        class_position=class_position,
    )
    return CompiledTree(
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_value=np.asarray(leaf_value, dtype=value_dtype),
        depth=depth,
        classes=classes,
        leaf_proba=np.asarray(proba_rows, dtype=np.float64)
        if proba_rows is not None
        else None,
    )
