"""Leaf regions of decision trees as axis-aligned boxes.

Every root-to-leaf path of a decision tree defines a hyper-rectangle:
following ``N(f <= v, tl, tr)`` left adds the constraint ``x_f <= v``
(an inclusive upper bound), following right adds ``x_f > v`` (a strict
lower bound).  The forgery solvers (:mod:`repro.solver`) reason about
these boxes directly: forcing tree ``t`` to output label ``y`` means
choosing one leaf of ``t`` labelled ``y`` and placing the forged
instance inside its box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .node import Leaf, TreeNode

__all__ = ["Box", "leaf_boxes", "boxes_for_label"]

NEG_INF = float("-inf")
POS_INF = float("inf")

# Nudge used when a point must satisfy a strict lower bound x_f > lo.
_STRICT_EPS = 1e-9


@dataclass
class Box:
    """An axis-aligned region ``{x : lo_f < x_f <= hi_f for all f}``.

    Only constrained features are stored (trees touch few features per
    path, while the ambient space may have hundreds of dimensions).
    Features absent from both maps are unconstrained.
    """

    lower: dict[int, float] = field(default_factory=dict)  # strict: x_f > lo
    upper: dict[int, float] = field(default_factory=dict)  # inclusive: x_f <= hi

    def copy(self) -> "Box":
        return Box(lower=dict(self.lower), upper=dict(self.upper))

    def constrain_upper(self, feature: int, value: float) -> None:
        """Add ``x_feature <= value`` (keep the tighter bound)."""
        current = self.upper.get(feature, POS_INF)
        if value < current:
            self.upper[feature] = value

    def constrain_lower(self, feature: int, value: float) -> None:
        """Add ``x_feature > value`` (keep the tighter bound)."""
        current = self.lower.get(feature, NEG_INF)
        if value > current:
            self.lower[feature] = value

    def interval(self, feature: int) -> tuple[float, float]:
        """Return the ``(lo, hi]`` interval of a feature."""
        return self.lower.get(feature, NEG_INF), self.upper.get(feature, POS_INF)

    def is_empty(self) -> bool:
        """True when some feature interval ``(lo, hi]`` contains no point."""
        for feature, lo in self.lower.items():
            if lo >= self.upper.get(feature, POS_INF):
                return True
        return False

    def features(self) -> set[int]:
        """All features constrained by this box."""
        return set(self.lower) | set(self.upper)

    def intersect(self, other: "Box") -> "Box":
        """Return the intersection of two boxes (may be empty)."""
        result = self.copy()
        for feature, lo in other.lower.items():
            result.constrain_lower(feature, lo)
        for feature, hi in other.upper.items():
            result.constrain_upper(feature, hi)
        return result

    def intersects(self, other: "Box") -> bool:
        """Cheap emptiness test of the pairwise intersection."""
        for feature in other.features() | self.features():
            lo = max(self.lower.get(feature, NEG_INF), other.lower.get(feature, NEG_INF))
            hi = min(self.upper.get(feature, POS_INF), other.upper.get(feature, POS_INF))
            if lo >= hi:
                return False
        return True

    def contains(self, x: np.ndarray) -> bool:
        """True when instance ``x`` lies inside the box."""
        for feature, lo in self.lower.items():
            if not x[feature] > lo:
                return False
        for feature, hi in self.upper.items():
            if not x[feature] <= hi:
                return False
        return True

    def clip_to_ball(self, center: np.ndarray, radius: float) -> "Box":
        """Intersect with the closed ``L∞`` ball around ``center``.

        Ball membership ``|x_f - c_f| <= radius`` is encoded as
        ``x_f <= c_f + radius`` and ``x_f > c_f - radius - eps`` (the
        lower side uses a tiny slack so the closed ball boundary stays
        feasible under our strict lower bounds).
        """
        result = self.copy()
        for feature in range(center.shape[0]):
            result.constrain_upper(feature, float(center[feature]) + radius)
            result.constrain_lower(
                feature, float(center[feature]) - radius - _STRICT_EPS
            )
        return result

    def clip_to_domain(self, low: float, high: float, n_features: int) -> "Box":
        """Intersect with the hyper-cube ``[low, high]^n_features``."""
        result = self.copy()
        for feature in range(n_features):
            result.constrain_upper(feature, high)
            result.constrain_lower(feature, low - _STRICT_EPS)
        return result

    def sample_point(
        self, n_features: int, reference: np.ndarray | None = None
    ) -> np.ndarray:
        """Pick a concrete instance inside the box.

        Unconstrained coordinates copy the reference instance (or 0).
        Constrained coordinates take the point of their interval closest
        to the reference, nudged off strict lower boundaries.

        Raises
        ------
        ValueError
            If the box is empty.
        """
        if self.is_empty():
            raise ValueError("cannot sample from an empty box")
        x = (
            reference.astype(np.float64).copy()
            if reference is not None
            else np.zeros(n_features, dtype=np.float64)
        )
        for feature in self.features():
            lo, hi = self.interval(feature)
            target = x[feature]
            if lo == NEG_INF and hi == POS_INF:
                continue
            if lo == NEG_INF:
                value = min(target, hi)
            elif hi == POS_INF:
                value = max(target, lo + _STRICT_EPS)
            else:
                value = min(max(target, lo + _STRICT_EPS), hi)
                if not value > lo:  # interval thinner than the nudge
                    value = 0.5 * (lo + hi)
                    value = np.nextafter(value, hi) if not value > lo else value
            x[feature] = value
        return x


def leaf_boxes(root: TreeNode) -> list[tuple[Leaf, Box]]:
    """Enumerate all ``(leaf, box)`` pairs of the tree rooted at ``root``."""
    result: list[tuple[Leaf, Box]] = []
    stack: list[tuple[TreeNode, Box]] = [(root, Box())]
    while stack:
        node, box = stack.pop()
        if node.is_leaf:
            result.append((node, box))  # type: ignore[arg-type]
            continue
        left_box = box.copy()
        left_box.constrain_upper(node.feature, node.threshold)
        right_box = box.copy()
        right_box.constrain_lower(node.feature, node.threshold)
        stack.append((node.right, right_box))
        stack.append((node.left, left_box))
    return result


def boxes_for_label(root: TreeNode, label: int) -> list[Box]:
    """Boxes of the leaves of ``root`` that predict ``label``.

    An instance placed inside any of these boxes is guaranteed to be
    classified as ``label`` by the tree — the building block of the
    forgery encodings.
    """
    return [box for leaf, box in leaf_boxes(root) if leaf.prediction == label]
