"""Weighted regression trees (variance-reduction CART).

These are the base learners of gradient boosting
(:mod:`repro.ensemble.boosting`), the ensemble family the paper names as
the target for generalising its watermarking scheme.  Leaves carry real
values instead of class labels, so the inductive node types of
:mod:`repro.trees.node` are not reused; the regression tree keeps its
own minimal array-based structure tuned for fast residual fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_sample_weight, check_X, check_X_y
from ..exceptions import NotFittedError, ValidationError
from .presort import presorted_dataset

__all__ = ["RegressionTree"]

_MIN_VALUE_GAP = 1e-12


@dataclass
class _RegLeaf:
    value: float

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass
class _RegNode:
    feature: int
    threshold: float
    left: object
    right: object

    @property
    def is_leaf(self) -> bool:
        return False


def _best_split_sse(
    values: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    min_samples_leaf: int,
    order: np.ndarray | None = None,
    sorted_values: np.ndarray | None = None,
) -> tuple[float, float] | None:
    """Best threshold of one feature by weighted SSE reduction.

    Returns ``(sse_after, threshold)`` or ``None``.  ``order`` (and the
    matching ``sorted_values``) may come from the dataset presort cache;
    when omitted they are computed here.  Both routes are bit-identical
    — a presorted order *is* the stable argsort.
    """
    if order is None:
        order = np.argsort(values, kind="stable")
    if sorted_values is None:
        sorted_values = values[order]
    if sorted_values[-1] - sorted_values[0] <= _MIN_VALUE_GAP:
        return None
    w = weights[order]
    wy = w * targets[order]
    wyy = wy * targets[order]

    prefix_w = np.cumsum(w)
    prefix_wy = np.cumsum(wy)
    prefix_wyy = np.cumsum(wyy)
    total_w, total_wy, total_wyy = prefix_w[-1], prefix_wy[-1], prefix_wyy[-1]

    # Node size comes from the (possibly presorted) order, not from
    # ``values`` — with an external order, ``values`` is the full column.
    n = sorted_values.shape[0]
    positions = np.arange(1, n)
    distinct = sorted_values[1:] - sorted_values[:-1] > _MIN_VALUE_GAP
    big_enough = (positions >= min_samples_leaf) & (n - positions >= min_samples_leaf)
    valid = distinct & big_enough
    if not valid.any():
        return None
    positions = positions[valid]

    lw = prefix_w[positions - 1]
    lwy = prefix_wy[positions - 1]
    lwyy = prefix_wyy[positions - 1]
    rw = total_w - lw
    rwy = total_wy - lwy
    rwyy = total_wyy - lwyy
    with np.errstate(divide="ignore", invalid="ignore"):
        sse = (lwyy - lwy * lwy / lw) + (rwyy - rwy * rwy / rw)
    sse = np.where((lw > 0) & (rw > 0), sse, np.inf)

    best = int(np.argmin(sse))
    position = int(positions[best])
    threshold = 0.5 * (sorted_values[position - 1] + sorted_values[position])
    if threshold <= sorted_values[position - 1]:
        threshold = sorted_values[position - 1]
    return float(sse[best]), float(threshold)


class RegressionTree:
    """A least-squares regression tree with sample weights.

    Parameters mirror the classification tree where meaningful.  The
    ``leaf_value_fn`` hook lets gradient boosting replace plain weighted
    means with Newton-step leaf values: it receives the index array of
    the samples in the leaf and returns the leaf's value.

    ``splitter="presorted"`` (default) reuses the dataset's cached
    per-feature sort orders — gradient boosting refits a tree per stage
    on the *same* ``X`` with new residual targets, so the presort pays
    for itself across all stages; ``"local"`` restores per-node
    re-sorting.  Fitted trees are bit-identical either way.
    """

    def __init__(
        self,
        max_depth: int | None = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        splitter: str = "presorted",
        random_state=None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if splitter not in ("presorted", "local"):
            raise ValidationError(
                f"splitter must be one of ('presorted', 'local'), got {splitter!r}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.splitter = splitter
        self.random_state = random_state
        self.root_ = None
        self.n_features_in_: int | None = None

    def fit(self, X, y, sample_weight=None, leaf_value_fn=None) -> "RegressionTree":
        """Fit the tree to real-valued targets ``y``."""
        X = check_X(X)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (X.shape[0],):
            raise ValidationError(
                f"y must have shape ({X.shape[0]},), got {y.shape}"
            )
        weights = check_sample_weight(sample_weight, X.shape[0])

        if leaf_value_fn is None:

            def leaf_value_fn(index: np.ndarray) -> float:
                return float(np.average(y[index], weights=weights[index]))

        presort = (
            presorted_dataset(X) if self.splitter == "presorted" else None
        )
        all_features = np.arange(X.shape[1])

        def build(index: np.ndarray, depth: int):
            can_split = (
                (self.max_depth is None or depth < self.max_depth)
                and index.shape[0] >= self.min_samples_split
                and index.shape[0] >= 2 * self.min_samples_leaf
            )
            split = None
            if can_split:
                if presort is not None:
                    # One membership filter yields every feature's node
                    # ordering; the global rows double as gather indices
                    # into the full y / weights arrays.
                    rows, row_values = presort.node_sorted(index, all_features)
                best_sse = np.inf
                for feature in range(X.shape[1]):
                    if presort is not None:
                        result = _best_split_sse(
                            X[:, feature],
                            y,
                            weights,
                            self.min_samples_leaf,
                            order=rows[feature],
                            sorted_values=row_values[feature],
                        )
                    else:
                        result = _best_split_sse(
                            X[index, feature],
                            y[index],
                            weights[index],
                            self.min_samples_leaf,
                        )
                    if result is not None and result[0] < best_sse - 1e-15:
                        best_sse = result[0]
                        split = (feature, result[1])
            if split is None:
                return _RegLeaf(value=leaf_value_fn(index))
            feature, threshold = split
            go_left = X[index, feature] <= threshold
            return _RegNode(
                feature=feature,
                threshold=threshold,
                left=build(index[go_left], depth + 1),
                right=build(index[~go_left], depth + 1),
            )

        self.root_ = build(np.arange(X.shape[0]), 0)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        """Predict real values for ``X``."""
        if self.root_ is None:
            raise NotFittedError("this RegressionTree is not fitted yet")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the tree was fitted with "
                f"{self.n_features_in_}"
            )
        out = np.empty(X.shape[0], dtype=np.float64)
        stack = [(self.root_, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            go_left = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return out
