"""Inductive decision-tree node structures.

The paper defines decision trees inductively: a tree ``t`` is either a
leaf ``L(y)`` for a label ``y``, or an internal node ``N(f <= v, tl, tr)``
where ``f`` is a feature index, ``v`` a threshold and ``tl``/``tr`` the
left/right subtrees.  An instance goes left when ``x[f] <= v``.

This module mirrors that definition exactly with two small classes so
that the NP-hardness reduction (:mod:`repro.hardness.reduction`) and the
solver encodings can build and traverse trees structurally, independent
of how they were learned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

import numpy as np

__all__ = ["Leaf", "InternalNode", "TreeNode"]


@dataclass
class Leaf:
    """A leaf ``L(y)`` predicting label ``y``.

    ``class_weights`` optionally records the weighted class mass that
    reached the leaf during training (keyed by label); it is used for
    probability estimates and for gradient-boosting leaf values, and is
    empty for hand-built trees such as those produced by the 3SAT
    reduction.
    """

    prediction: int
    class_weights: dict[int, float] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return True

    def n_leaves(self) -> int:
        return 1

    def depth(self) -> int:
        return 0

    def total_weight(self) -> float:
        return float(sum(self.class_weights.values()))


@dataclass
class InternalNode:
    """An internal node ``N(feature <= threshold, left, right)``."""

    feature: int
    threshold: float
    left: "TreeNode"
    right: "TreeNode"

    @property
    def is_leaf(self) -> bool:
        return False

    def n_leaves(self) -> int:
        return self.left.n_leaves() + self.right.n_leaves()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())


TreeNode = Union[Leaf, InternalNode]


def iter_nodes(root: TreeNode) -> Iterator[TreeNode]:
    """Yield every node of the tree rooted at ``root`` in pre-order."""
    stack: list[TreeNode] = [root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)


def iter_leaves(root: TreeNode) -> Iterator[Leaf]:
    """Yield every leaf of the tree rooted at ``root`` in left-to-right order."""
    stack: list[TreeNode] = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            yield node  # type: ignore[misc]
        else:
            stack.append(node.right)
            stack.append(node.left)


def predict_one(root: TreeNode, x: np.ndarray) -> int:
    """Route a single instance down the tree and return the leaf label."""
    node = root
    while not node.is_leaf:
        node = node.left if x[node.feature] <= node.threshold else node.right
    return node.prediction  # type: ignore[union-attr]


def predict_batch(root: TreeNode, X: np.ndarray) -> np.ndarray:
    """Vectorised routing of a batch of instances down the tree.

    Partitions the index set recursively by the split mask at each node,
    which keeps the work proportional to ``n_samples * depth`` with numpy
    doing the comparisons.
    """
    out = np.empty(X.shape[0], dtype=np.int64)
    stack: list[tuple[TreeNode, np.ndarray]] = [(root, np.arange(X.shape[0]))]
    while stack:
        node, idx = stack.pop()
        if idx.size == 0:
            continue
        if node.is_leaf:
            out[idx] = node.prediction  # type: ignore[union-attr]
            continue
        go_left = X[idx, node.feature] <= node.threshold
        stack.append((node.left, idx[go_left]))
        stack.append((node.right, idx[~go_left]))
    return out
