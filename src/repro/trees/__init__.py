"""Decision-tree substrate: weighted CART trees and their geometry.

Public surface:

- :class:`DecisionTreeClassifier` — weighted CART learner with depth and
  leaf-count caps (the knobs the paper's ``Adjust`` heuristic tunes).
- :class:`Leaf` / :class:`InternalNode` — the paper's inductive tree
  structure, usable directly (e.g. by the 3SAT reduction).
- :class:`Box`, :func:`leaf_boxes`, :func:`boxes_for_label` — leaf
  regions as axis-aligned boxes, the geometric core of the forgery
  solvers.
- :func:`tree_stats`, :func:`ensemble_structure`, :func:`tree_to_text` —
  structural statistics (used by the detection attack) and export.
- :class:`CompiledTree`, :func:`compile_tree` — flat-array inference
  engine behind ``predict`` (see :mod:`repro.trees.compiled`), with
  :func:`set_inference_backend` / :func:`inference_backend` as the
  object-graph escape hatch.
- :class:`SortedDataset`, :func:`presorted_dataset` — the training-side
  per-dataset sort cache behind the default ``splitter="presorted"``
  engine (see :mod:`repro.trees.presort`), with ``splitter="local"`` as
  the node-local escape hatch.
"""

from .compiled import (
    CompiledTree,
    compile_tree,
    get_inference_backend,
    inference_backend,
    set_inference_backend,
)
from .criteria import entropy_impurity, gini_impurity
from .export import TreeStats, ensemble_structure, tree_stats, tree_to_text
from .node import InternalNode, Leaf, TreeNode, iter_leaves, iter_nodes, predict_batch, predict_one
from .paths import Box, boxes_for_label, leaf_boxes
from .presort import (
    SortedDataset,
    clear_presort_cache,
    presort_cache_stats,
    presorted_dataset,
)
from .pruning import prune_cost_complexity, pruning_path, subtree_risk
from .regression import RegressionTree
from .tree import SPLITTERS, DecisionTreeClassifier, resolve_max_features

__all__ = [
    "Box",
    "CompiledTree",
    "compile_tree",
    "DecisionTreeClassifier",
    "get_inference_backend",
    "inference_backend",
    "set_inference_backend",
    "InternalNode",
    "Leaf",
    "TreeNode",
    "TreeStats",
    "boxes_for_label",
    "ensemble_structure",
    "entropy_impurity",
    "gini_impurity",
    "iter_leaves",
    "iter_nodes",
    "leaf_boxes",
    "predict_batch",
    "predict_one",
    "prune_cost_complexity",
    "pruning_path",
    "RegressionTree",
    "SortedDataset",
    "SPLITTERS",
    "clear_presort_cache",
    "presort_cache_stats",
    "presorted_dataset",
    "subtree_risk",
    "resolve_max_features",
    "tree_stats",
    "tree_to_text",
]
