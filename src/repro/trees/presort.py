"""Per-dataset presorted feature orders — the training-side sort cache.

Exact split search spends almost all of its time ordering feature
columns: the node-local splitter re-runs ``np.argsort`` for every
candidate feature at every node.  But Algorithm 1 (``TrainWithTrigger``)
retrains forests again and again on the *same* ``X`` with only the
sample weights changed — escalation rounds, selective ``refit_trees``,
the ``Adjust`` probe, every grid-search candidate.  Sort orders depend
on ``X`` alone, so all of that work is amortisable: compute each feature
column's stable sort order (and its sorted values) **once per dataset**,
then derive every node's ordering from it.

:class:`SortedDataset` holds those global orders in feature-major
``(n_features, n_samples)`` layout so every per-feature lane is
contiguous.  A node's ordering is obtained either by *filtering* the
global order with a membership mask (a stable global order restricted to
a subset is bitwise-identical to a stable argsort of that subset,
provided the subset index is ascending — which tree growth guarantees)
or, for small nodes where an O(n) filter pass would cost more than an
O(k log k) sort, by a node-local stable argsort.  Both produce the exact
same permutation, so trees grown on top of this cache are **bit-for-bit
identical** to the node-local splitter's output.

The module-level cache is keyed by *array identity* (``X is cached.X``)
rather than by content hash: the training pipelines thread one validated
array object through every round (``check_X`` returns its input
unchanged when already canonical), so identity is both exact and free.
Entries hold their training matrix through a weak reference, so a
matrix the caller drops evaporates from the cache (tables and all)
instead of pinning gigabytes until process exit.  Fork-based process
pools inherit the warmed cache copy-on-write; :func:`adopt_presort`
re-binds an inherited :class:`SortedDataset` to the worker's own
(pickled, bitwise-equal) copy of ``X`` after verifying equality.

The cache assumes training matrices are never mutated in place while
cached — true everywhere in this library, where re-weighting changes
``sample_weight`` and never ``X``.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

__all__ = [
    "SortedDataset",
    "NodeOrdering",
    "root_ordering",
    "partition_ordering",
    "presorted_dataset",
    "adopt_presort",
    "clear_presort_cache",
    "presort_cache_stats",
]

#: Maximum number of datasets kept presorted at once (LRU).  Large
#: enough for a whole watermarking pipeline — the full training matrix,
#: a ``StratifiedKFold(n_splits=10)`` grid search's fold matrices, and a
#: boosting run — without thrashing; weak references keep dead entries
#: from pinning memory regardless of the cap.
_MAX_CACHED = 12


class SortedDataset:
    """Stable per-feature sort orders (and sorted values) of one matrix.

    ``orders[f]`` lists the row ids of ``X`` in stable ascending order
    of feature ``f``; ``sorted_values[f]`` carries the matching values
    (``X[orders[f], f]``) so node filtering never has to gather from the
    row-major training matrix with a random row order.  Built once per
    dataset (O(F · n log n)) and reused by every node of every tree
    fitted on ``X``.
    """

    __slots__ = (
        "_x_ref",
        "XT",
        "orders",
        "sorted_values",
        "n_samples",
        "n_features",
    )

    def __init__(self, X: np.ndarray) -> None:
        source = X  # the caller's object is the cache identity
        X = np.asarray(X, dtype=np.float64)
        self._x_ref = _make_ref(source)
        self.n_samples, self.n_features = X.shape
        # Feature-major copy: every column becomes a contiguous lane, so
        # node-local gathers stream instead of striding across rows.
        self.XT = np.ascontiguousarray(X.T)
        orders = np.empty((self.n_features, self.n_samples), dtype=np.intp)
        sorted_values = np.empty((self.n_features, self.n_samples), dtype=np.float64)
        for feature in range(self.n_features):
            column = self.XT[feature]
            order = np.argsort(column, kind="stable")
            orders[feature] = order
            sorted_values[feature] = column[order]
        self.orders = orders
        self.sorted_values = sorted_values

    @property
    def X(self):
        """The presorted training matrix, or ``None`` once collected."""
        return self._x_ref()

    @classmethod
    def _from_tables(cls, X: np.ndarray, donor: "SortedDataset") -> "SortedDataset":
        """Re-bind a donor's tables to an equal array (fork adoption)."""
        new = cls.__new__(cls)
        new._x_ref = _make_ref(X)
        new.XT = donor.XT
        new.orders = donor.orders
        new.sorted_values = donor.sorted_values
        new.n_samples, new.n_features = X.shape
        return new

    def matches(self, X: np.ndarray) -> bool:
        """True when ``X`` is bitwise-equal to the presorted matrix.

        Compared against the engine's own feature-major copy, so the
        check works even after the original matrix was collected.
        """
        if X is not None and X is self.X:
            return True
        return (
            isinstance(X, np.ndarray)
            and X.shape == (self.n_samples, self.n_features)
            and X.dtype == np.float64
            and bool(np.array_equal(X, self.XT.T))
        )

    def node_sorted(
        self, index: np.ndarray, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feature-sorted view of one node: ``(rows, values)``, ``(F, k)``.

        ``rows[j]`` equals ``index[argsort(X[index, features[j]],
        kind="stable")]`` exactly, and ``values[j]`` the correspondingly
        sorted feature values.  The implementation picks, per node,
        whichever of the two equivalent routes is cheaper:

        - **filter**: gate the global order through a membership mask —
          O(n) per feature, independent of node size, exact for
          ascending ``index`` (ties keep global row order, which *is*
          subset order when the subset index ascends);
        - **local sort**: batched stable argsort of the node's values —
          O(k log k) per feature, exact for any ``index`` order.
        """
        features = np.asarray(features)
        k = index.shape[0]
        n_feat = features.shape[0]
        if k == 0:
            empty = np.empty((n_feat, 0))
            return empty.astype(np.intp), empty
        all_features = (
            n_feat == self.n_features
            and int(features[0]) == 0
            and bool((np.diff(features) == 1).all())
        )
        ascending = k == 1 or bool((index[1:] > index[:-1]).all())
        # Filter passes cost ~4n element-ops per feature vs ~k log k
        # (heavier constant) for a sort; the crossover sits near
        # k (1 + log2 k) ≈ n/2.  Either branch yields the same bits.
        local_cheaper = k * (1.0 + np.log2(max(k, 2))) * 2.0 < self.n_samples
        if not ascending or local_cheaper:
            subset = (
                self.XT[:, index] if all_features else self.XT[np.ix_(features, index)]
            )  # (F, k), gathered from contiguous lanes
            perm = np.argsort(subset, axis=1, kind="stable")
            return index[perm], np.take_along_axis(subset, perm, axis=1)
        if k == self.n_samples:
            # Ascending full-length index is necessarily arange(n).
            if all_features:
                return self.orders, self.sorted_values
            return self.orders[features], self.sorted_values[features]
        selected = self.orders if all_features else self.orders[features]
        sorted_values = (
            self.sorted_values if all_features else self.sorted_values[features]
        )
        # A fresh mask per call: costs a microsecond-scale memset and
        # keeps concurrent threaded fits on one cached dataset safe (a
        # shared scratch buffer would race once numpy releases the GIL).
        mask = np.zeros(self.n_samples, dtype=bool)
        mask[index] = True
        member = mask[selected]
        # Each lane holds exactly k members, so the row-major compress
        # concatenates per-feature blocks of length k.
        rows = selected[member].reshape(n_feat, k)
        values = sorted_values[member].reshape(n_feat, k)
        return rows, values


class NodeOrdering:
    """Per-node feature-sorted lanes, maintained through tree growth.

    All four tables are ``(n_lane_features, k)`` with lane ``j`` sorted
    by the node's ``j``-th subspace feature: global row ids, feature
    values, class codes and sample weights.  Carrying the gathered
    codes/weights alongside the order means split evaluation touches no
    ``n``-sized array at all — and partitioning a node into its children
    (a stable boolean compress per lane, :func:`partition_ordering`)
    costs O(k) per feature, independent of the dataset size.
    """

    __slots__ = ("rows", "values", "codes", "weights")

    def __init__(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        codes: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self.rows = rows
        self.values = values
        self.codes = codes
        self.weights = weights


def root_ordering(
    presort: SortedDataset,
    index: np.ndarray,
    features: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
) -> NodeOrdering:
    """The root node's :class:`NodeOrdering` over the tree's subspace.

    Derived from the dataset presort (one membership filter — or a
    direct view when the root holds every sample), plus one gather each
    for codes and weights; every deeper node's ordering then comes from
    :func:`partition_ordering` without ever touching the global tables
    again.
    """
    rows, values = presort.node_sorted(index, features)
    return NodeOrdering(rows, values, codes[rows], weights[rows])


def partition_ordering(
    presort: SortedDataset,
    ordering: NodeOrdering,
    left_index: np.ndarray,
    right_index: np.ndarray,
    want_left: bool = True,
    want_right: bool = True,
) -> tuple[NodeOrdering | None, NodeOrdering | None]:
    """Split a node's ordering into its children's orderings.

    A stable order filtered by membership is the subset's stable order,
    so compressing each lane with the left/right membership mask yields
    exactly what re-sorting (or re-filtering the global order) would —
    bit for bit — at O(k) per lane.  A child known to become a leaf
    (growth checks the depth cap and size floors up front) can be
    skipped via ``want_left`` / ``want_right``.
    """
    n_lanes, k = ordering.rows.shape
    mask = np.zeros(presort.n_samples, dtype=bool)
    mask[left_index] = True
    member = mask[ordering.rows]
    left = right = None
    if want_left:
        k_left = left_index.shape[0]
        left = NodeOrdering(
            ordering.rows[member].reshape(n_lanes, k_left),
            ordering.values[member].reshape(n_lanes, k_left),
            ordering.codes[member].reshape(n_lanes, k_left),
            ordering.weights[member].reshape(n_lanes, k_left),
        )
    if want_right:
        k_right = right_index.shape[0]
        other = ~member
        right = NodeOrdering(
            ordering.rows[other].reshape(n_lanes, k_right),
            ordering.values[other].reshape(n_lanes, k_right),
            ordering.codes[other].reshape(n_lanes, k_right),
            ordering.weights[other].reshape(n_lanes, k_right),
        )
    return left, right


_CACHE: list[SortedDataset] = []
_STATS = {"hits": 0, "misses": 0, "adopted": 0}

#: Serializes every cache lookup/insert: concurrent fits (the serving
#: daemon's executor threads, user thread pools) must not race on the
#: LRU list, and a miss holds the lock through the sort so the same
#: matrix is presorted exactly once.  Reentrant because eviction runs
#: from ``weakref.finalize`` callbacks, which a garbage-collection pass
#: can trigger while the owning thread already holds the lock.
_CACHE_LOCK = threading.RLock()


def _make_ref(obj):
    """A callable resolving to ``obj`` — weakly when the type allows it.

    Arrays (the only inputs the library itself produces) are held
    weakly so the cache never outlives the training data; exotic inputs
    that refuse weak references fall back to a strong closure.
    """
    try:
        return weakref.ref(obj)
    except TypeError:
        return lambda: obj


def _prune_dead() -> None:
    with _CACHE_LOCK:
        _CACHE[:] = [entry for entry in _CACHE if entry.X is not None]


def presorted_dataset(X: np.ndarray) -> SortedDataset:
    """The (cached) :class:`SortedDataset` of ``X``, keyed by identity.

    A hit requires the *same object* the presort was built from — cheap,
    exact, and the natural key for the repo's pipelines, which validate
    once and pass one array object through every retraining round.
    Entries whose training matrix has been garbage-collected are pruned.
    Thread-safe: a miss keeps the cache lock through the sort, so eight
    threads first-touching the same matrix build one presort, not eight.
    """
    with _CACHE_LOCK:
        _prune_dead()
        for position, entry in enumerate(_CACHE):
            if entry.X is X:
                if position:
                    _CACHE.insert(0, _CACHE.pop(position))
                _STATS["hits"] += 1
                return entry
        entry = SortedDataset(X)
        _insert(entry, X)
        _STATS["misses"] += 1
        return entry


def _insert(entry: SortedDataset, source) -> None:
    with _CACHE_LOCK:
        _CACHE.insert(0, entry)
        del _CACHE[_MAX_CACHED:]
    try:
        # Evict eagerly when the training matrix dies, not just on the
        # next lookup — a fit-and-forget caller should leak nothing.
        weakref.finalize(source, _prune_dead)
    except TypeError:
        pass


def adopt_presort(shared: object, X: np.ndarray) -> SortedDataset | None:
    """Bind a fork-inherited :class:`SortedDataset` to this process's ``X``.

    Pool workers receive ``X`` by pickling, so the parent's cache —
    inherited copy-on-write under ``fork`` — misses on identity.  When
    ``shared`` (the parent's presort, delivered via
    :func:`repro.parallel.shared_payload`) is bitwise-equal to ``X``,
    its order tables are re-bound to the worker's array and cached,
    making every subsequent :func:`presorted_dataset` lookup in the
    worker a hit.  Returns ``None`` (and leaves the cache alone) when
    ``shared`` is not a matching presort — callers must treat adoption
    as an optimisation, never a requirement.
    """
    if not isinstance(shared, SortedDataset):
        return None
    with _CACHE_LOCK:
        for entry in _CACHE:
            if entry.X is X:
                return entry
        if not shared.matches(X):
            return None
        adopted = SortedDataset._from_tables(X, shared)
        _insert(adopted, X)
        _STATS["adopted"] += 1
        return adopted


def clear_presort_cache() -> None:
    """Drop every cached presort (tests and cold-cache benchmarking)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def presort_cache_stats() -> dict[str, int]:
    """Counters (``hits`` / ``misses`` / ``adopted``) since import."""
    with _CACHE_LOCK:
        return dict(_STATS)
