"""Exact best-split search over (optionally weighted) training data.

The splitter evaluates, for each candidate feature, every distinct
threshold between consecutive sorted feature values, using vectorised
prefix sums of weighted class counts.  This reproduces the behaviour the
paper relies on from sklearn: sample weights steer the chosen splits, so
heavily re-weighted trigger instances dominate impurity and force the
tree to carve them out correctly (Algorithm 1, ``TrainWithTrigger``).

Two equivalent engines implement the search:

- the **node-local** path (the seed implementation, kept as the
  ``splitter="local"`` escape hatch): one Python iteration per candidate
  feature, each re-running ``np.argsort`` on the node's values;
- the **presorted** path (default): node orderings are derived from a
  per-dataset :class:`~repro.trees.presort.SortedDataset` cache, and all
  candidate features of a node are scored in one batched prefix-sum /
  criterion evaluation — no per-node sorting, no per-feature Python
  loop.

The two paths are **bit-for-bit equivalent**: same thresholds, same
equal-gain tie-break (lowest feature id), same midpoint-collapse guard.
A stable global sort order filtered to an ascending-index subset *is*
the stable argsort of that subset, and every arithmetic step of the
batched evaluation is an element-wise image of the node-local one, so
identical floats flow through identical operations.  The differential
tests in ``tests/trees/test_presort.py`` pin this contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .criteria import entropy_impurity, gini_impurity, weighted_class_counts

__all__ = ["Split", "find_best_split"]

# Two adjacent feature values closer than this are treated as equal and
# never separated by a threshold, matching the float32-ish granularity
# real tree learners use and keeping midpoint thresholds representable.
_MIN_VALUE_GAP = 1e-12

# Feature-block size cap for the batched evaluation: blocks are sized so
# the (k, F, n_classes) prefix tensors stay within a few dozen MB even
# at the root of a large dataset.
_BLOCK_ELEMENTS = 1 << 21


@dataclass
class Split:
    """Result of a best-split search at one node.

    ``gain`` is the *absolute weighted impurity decrease*
    ``w_node * imp(node) - (w_left * imp(left) + w_right * imp(right))``,
    a quantity comparable across nodes, which is what best-first growth
    orders its expansion heap by.
    """

    feature: int
    threshold: float
    gain: float
    left_index: np.ndarray
    right_index: np.ndarray


def _class_count_prefixes(
    codes: np.ndarray, weights: np.ndarray, n_classes: int
) -> np.ndarray:
    """Weighted class-count prefix sums: ``prefix[i, c]`` is the weight of
    class ``c`` among the first ``i + 1`` samples in sorted order."""
    one_hot = np.zeros((codes.shape[0], n_classes), dtype=np.float64)
    one_hot[np.arange(codes.shape[0]), codes] = weights
    return np.cumsum(one_hot, axis=0)


def _best_position_for_feature(
    values: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Best split of one feature; returns ``(gain, threshold, position)``.

    ``position`` is the number of sorted samples that go to the left
    child.  Returns ``None`` when the feature admits no valid split.
    This is the node-local engine: it re-sorts the node's values.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    if sorted_values[-1] - sorted_values[0] <= _MIN_VALUE_GAP:
        return None

    prefix = _class_count_prefixes(codes[order], weights[order], n_classes)
    total = prefix[-1]
    n = values.shape[0]

    # Candidate positions i mean "first i sorted samples go left".
    positions = np.arange(1, n)
    distinct = sorted_values[1:] - sorted_values[:-1] > _MIN_VALUE_GAP
    big_enough = (positions >= min_samples_leaf) & (n - positions >= min_samples_leaf)
    valid = distinct & big_enough
    if not valid.any():
        return None
    positions = positions[valid]

    left_counts = prefix[positions - 1]
    right_counts = total[None, :] - left_counts
    left_weight = left_counts.sum(axis=1)
    right_weight = right_counts.sum(axis=1)
    child_weighted = left_weight * criterion(left_counts) + right_weight * criterion(
        right_counts
    )
    gains = parent_weighted_impurity - child_weighted

    best = int(np.argmax(gains))
    position = int(positions[best])
    threshold = 0.5 * (sorted_values[position - 1] + sorted_values[position])
    # Guard against midpoints that collapse onto the left value through
    # floating-point rounding, which would route left-side samples right.
    if threshold <= sorted_values[position - 1]:
        threshold = sorted_values[position - 1]
    return float(gains[best]), float(threshold), position


def _local_best(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Node-local engine: Python loop over candidate features."""
    node_codes = codes[index]
    node_weights = weights[index]
    best: tuple[float, float, int] | None = None  # gain, threshold, feature
    for feature in candidate_features:
        result = _best_position_for_feature(
            X[index, feature],
            node_codes,
            node_weights,
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
        )
        if result is None:
            continue
        gain, threshold, _position = result
        key = (gain, -int(feature))  # deterministic tie-break: lowest feature id
        if best is None or key > (best[0], -best[2]):
            best = (gain, threshold, int(feature))
    return best


def _binary_child_weighted(
    sorted_codes: np.ndarray,
    sorted_weights: np.ndarray,
    criterion,
    lo: int,
    hi: int,
) -> np.ndarray | None:
    """Fused ``w_l·crit(left) + w_r·crit(right)`` for the two-class case.

    Shape ``(F, hi-lo)``, one row per feature lane, covering the
    admissible split positions ``lo+1 .. hi`` (the ``min_samples_leaf``
    window — positions outside it are masked out downstream anyway, so
    the division chain never runs there).  Every arithmetic step mirrors
    the generic one-hot/criterion pipeline operation for operation —
    ``x·x`` for ``np.square``, a single add for the two-element
    class-axis sums — so the result is bitwise-identical while touching
    a third of the memory.  Returns ``None`` for criteria without a
    fused kernel (callers fall back to the generic path).
    """
    if criterion is gini_impurity:
        fused = _binary_gini
    elif criterion is entropy_impurity:
        fused = _binary_entropy
    else:
        return None
    # One-hot weights: class-1 weight is w - w0 — exact, because per
    # element exactly one of the two terms is zero.
    w0 = np.where(sorted_codes == 0, sorted_weights, 0.0)
    w1 = sorted_weights - w0
    c0 = np.cumsum(w0, axis=1)
    c1 = np.cumsum(w1, axis=1)
    l0 = c0[:, lo:hi]
    l1 = c1[:, lo:hi]
    r0 = c0[:, -1:] - l0
    r1 = c1[:, -1:] - l1
    left_weight = l0 + l1
    right_weight = r0 + r1
    # Strictly positive sample weights make every cumulative child
    # weight positive, so the criterion's ``where(total > 0, ...)``
    # guard is the identity and can be skipped; tree growth guarantees
    # positivity (zero-weight rows never enter the root index), other
    # callers get the guarded evaluation.
    guarded = not sorted_weights[0].min() > 0.0
    if guarded:
        with np.errstate(divide="ignore", invalid="ignore"):
            left = left_weight * fused(l0, l1, left_weight, guarded)
            right = right_weight * fused(r0, r1, right_weight, guarded)
    else:
        # Positive child weights: no division can misfire, so the
        # errstate context (a measurable per-node cost) is skipped too.
        left = left_weight * fused(l0, l1, left_weight, guarded)
        right = right_weight * fused(r0, r1, right_weight, guarded)
    return left + right


def _binary_gini(count0, count1, total, guarded):
    """Two-class Gini, op-for-op equal to :func:`gini_impurity`."""
    p0 = count0 / total
    p1 = count1 / total
    impurity = 1.0 - (p0 * p0 + p1 * p1)
    if not guarded:
        return impurity
    return np.where(total > 0, impurity, 0.0)


def _binary_entropy(count0, count1, total, guarded):
    """Two-class entropy, op-for-op equal to :func:`entropy_impurity`."""
    p0 = count0 / total
    p1 = count1 / total
    log0 = np.where(p0 > 0, np.log2(np.maximum(p0, 1e-300)), 0.0)
    log1 = np.where(p1 > 0, np.log2(np.maximum(p1, 1e-300)), 0.0)
    impurity = -(p0 * log0 + p1 * log1)
    if not guarded:
        return impurity
    return np.where(total > 0, impurity, 0.0)


def _generic_child_weighted(
    sorted_codes: np.ndarray,
    sorted_weights: np.ndarray,
    n_classes: int,
    criterion,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Generic ``w_l·crit(left) + w_r·crit(right)``: any C, any criterion."""
    n_features, k = sorted_codes.shape
    one_hot = np.zeros((n_features, k, n_classes), dtype=np.float64)
    one_hot[
        np.arange(n_features)[:, None], np.arange(k)[None, :], sorted_codes
    ] = sorted_weights
    prefix = np.cumsum(one_hot, axis=1)
    left_counts = prefix[:, lo:hi, :]  # position i+1 sends sorted rows 0..i left
    right_counts = prefix[:, -1:, :] - left_counts
    left_weight = left_counts.sum(axis=2)
    right_weight = right_counts.sum(axis=2)
    return left_weight * criterion(left_counts) + right_weight * criterion(
        right_counts
    )


def _evaluate_feature_block(
    sorted_codes: np.ndarray,
    sorted_weights: np.ndarray,
    sorted_values: np.ndarray,
    features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Batched best split over one block of presorted features.

    Lane ``j`` of each input holds the node's class codes, sample
    weights and feature values sorted by ``features[j]`` (feature-major,
    contiguous lanes).  Every step is the element-wise image of
    :func:`_best_position_for_feature` run per feature, so the floats at
    valid positions — and hence the selected split — are identical; the
    lanes merely share one prefix-sum and one criterion evaluation.
    """
    n_features, k = sorted_codes.shape
    # Admissible positions form the contiguous window
    # ``min_samples_leaf <= position <= k - min_samples_leaf``; in the
    # gains-column space (column c ↔ position c+1) that is [lo, hi).
    # Positions are never below 1 or above k-1, so the window clamps to
    # that range — which also keeps a (nonsensical but accepted)
    # ``min_samples_leaf=0`` identical to the node-local path.
    lo = max(0, min_samples_leaf - 1)
    hi = min(k - min_samples_leaf, k - 1)
    if lo >= hi:
        return None

    child_weighted = (
        _binary_child_weighted(sorted_codes, sorted_weights, criterion, lo, hi)
        if n_classes == 2
        else None
    )
    if child_weighted is None:
        child_weighted = _generic_child_weighted(
            sorted_codes, sorted_weights, n_classes, criterion, lo, hi
        )
    gains = parent_weighted_impurity - child_weighted  # (F, hi-lo)

    distinct = (
        sorted_values[:, lo + 1 : hi + 1] - sorted_values[:, lo:hi] > _MIN_VALUE_GAP
    )
    if not distinct.any():
        return None

    masked = np.where(distinct, gains, -np.inf)
    best_columns = np.argmax(masked, axis=1)  # first maximum per feature lane
    best_gains = masked[np.arange(n_features), best_columns]
    admissible = np.flatnonzero(best_gains > -np.inf)
    if admissible.size == 0:
        return None

    # Cross-feature tie-break key (gain, -feature id): the maximal gain
    # wins, exact ties resolve toward the lowest feature id.
    top_gain = best_gains[admissible].max()
    tied = admissible[best_gains[admissible] == top_gain]
    j = int(tied[np.argmin(features[tied])])

    position = int(best_columns[j]) + lo + 1
    lane = sorted_values[j]
    threshold = 0.5 * (lane[position - 1] + lane[position])
    if threshold <= lane[position - 1]:
        threshold = lane[position - 1]
    return float(best_gains[j]), float(threshold), int(features[j])


def _blocked_best(
    sorted_codes: np.ndarray,
    sorted_weights: np.ndarray,
    sorted_values: np.ndarray,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Chunk the feature lanes so prefix tensors stay memory-bounded."""
    k = sorted_codes.shape[1]
    block = max(1, _BLOCK_ELEMENTS // max(1, k * n_classes))
    best: tuple[float, float, int] | None = None
    for start in range(0, candidate_features.shape[0], block):
        stop = start + block
        result = _evaluate_feature_block(
            sorted_codes[start:stop],
            sorted_weights[start:stop],
            sorted_values[start:stop],
            candidate_features[start:stop],
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
        )
        if result is None:
            continue
        if best is None or (result[0], -result[2]) > (best[0], -best[2]):
            best = result
    return best


def _presorted_best(
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
    presort,
) -> tuple[float, float, int] | None:
    """Presorted engine: derive lanes from the dataset cache, then batch."""
    if index.shape[0] < 2:
        return None
    rows, sorted_values = presort.node_sorted(index, candidate_features)
    return _blocked_best(
        codes[rows],
        weights[rows],
        sorted_values,
        candidate_features,
        n_classes,
        criterion,
        min_samples_leaf,
        parent_weighted_impurity,
    )


def _ordered_best(
    ordering,
    lane_positions: np.ndarray | None,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Growth-maintained engine: the node's lanes are already in hand.

    ``lane_positions`` selects the candidate lanes out of the node's
    subspace ordering (``None`` means every lane, in order).
    """
    if ordering.codes.shape[1] < 2:
        return None
    if lane_positions is None:
        sorted_codes = ordering.codes
        sorted_weights = ordering.weights
        sorted_values = ordering.values
    else:
        sorted_codes = ordering.codes[lane_positions]
        sorted_weights = ordering.weights[lane_positions]
        sorted_values = ordering.values[lane_positions]
    return _blocked_best(
        sorted_codes,
        sorted_weights,
        sorted_values,
        candidate_features,
        n_classes,
        criterion,
        min_samples_leaf,
        parent_weighted_impurity,
    )


def find_best_split(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    min_impurity_decrease: float,
    presort=None,
    ordering=None,
    lane_positions: np.ndarray | None = None,
) -> Split | None:
    """Search for the best split of the node holding samples ``index``.

    Parameters
    ----------
    X, codes, weights:
        Full training arrays; ``codes`` are class codes in ``[0, n_classes)``.
    index:
        Row indices of the samples sitting at this node.
    candidate_features:
        Feature ids to consider (already restricted to the tree's feature
        subspace and to the per-split ``max_features`` sample).
    criterion:
        Vectorised impurity function from :mod:`repro.trees.criteria`.
    min_samples_leaf:
        Minimum number of samples (unweighted) in each child.
    min_impurity_decrease:
        Minimum absolute weighted impurity decrease to accept a split.
    presort:
        Optional :class:`~repro.trees.presort.SortedDataset` of ``X``.
        When given, the batched presorted engine runs; when ``None``,
        the node-local engine.  Both return bit-identical splits.
    ordering:
        Optional :class:`~repro.trees.presort.NodeOrdering` carrying the
        node's already-partitioned sorted lanes (tree growth maintains
        these); takes precedence over ``presort``.  ``lane_positions``
        selects the candidate lanes within it (``None`` = all lanes).

    Returns
    -------
    Split | None
        The best admissible split, or ``None`` if the node must stay a leaf.
    """
    node_counts = weighted_class_counts(codes[index], weights[index], n_classes)
    if n_classes == 2 and criterion is gini_impurity:
        # Scalar fast path for the dominant case: the same IEEE add /
        # divide / multiply sequence as the vectorised criterion, minus
        # ~10 numpy calls per node.  (Entropy stays on the array path —
        # its log2 must come from the same libm to stay bit-identical.)
        total = node_counts[0] + node_counts[1]
        if total > 0:
            p0 = node_counts[0] / total
            p1 = node_counts[1] / total
            impurity = 1.0 - (p0 * p0 + p1 * p1)
        else:
            impurity = 0.0
        parent_weighted_impurity = float(total * impurity)
    else:
        parent_weighted_impurity = float(
            node_counts.sum() * criterion(node_counts[None, :])[0]
        )
    if parent_weighted_impurity <= 0.0:
        return None  # already pure

    candidate_features = np.asarray(candidate_features)
    if ordering is not None:
        best = _ordered_best(
            ordering,
            lane_positions,
            candidate_features,
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
        )
    elif presort is not None:
        best = _presorted_best(
            codes,
            weights,
            index,
            candidate_features,
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
            presort,
        )
    else:
        best = _local_best(
            X,
            codes,
            weights,
            index,
            candidate_features,
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
        )

    if best is None:
        return None
    gain, threshold, feature = best
    if gain < min_impurity_decrease or gain <= 1e-15:
        return None

    node_values = X[index, feature]
    go_left = node_values <= threshold
    return Split(
        feature=feature,
        threshold=threshold,
        gain=gain,
        left_index=index[go_left],
        right_index=index[~go_left],
    )
