"""Exact best-split search over (optionally weighted) training data.

The splitter evaluates, for each candidate feature, every distinct
threshold between consecutive sorted feature values, using vectorised
prefix sums of weighted class counts.  This reproduces the behaviour the
paper relies on from sklearn: sample weights steer the chosen splits, so
heavily re-weighted trigger instances dominate impurity and force the
tree to carve them out correctly (Algorithm 1, ``TrainWithTrigger``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Split", "find_best_split"]

# Two adjacent feature values closer than this are treated as equal and
# never separated by a threshold, matching the float32-ish granularity
# real tree learners use and keeping midpoint thresholds representable.
_MIN_VALUE_GAP = 1e-12


@dataclass
class Split:
    """Result of a best-split search at one node.

    ``gain`` is the *absolute weighted impurity decrease*
    ``w_node * imp(node) - (w_left * imp(left) + w_right * imp(right))``,
    a quantity comparable across nodes, which is what best-first growth
    orders its expansion heap by.
    """

    feature: int
    threshold: float
    gain: float
    left_index: np.ndarray
    right_index: np.ndarray


def _class_count_prefixes(
    codes: np.ndarray, weights: np.ndarray, n_classes: int
) -> np.ndarray:
    """Weighted class-count prefix sums: ``prefix[i, c]`` is the weight of
    class ``c`` among the first ``i + 1`` samples in sorted order."""
    one_hot = np.zeros((codes.shape[0], n_classes), dtype=np.float64)
    one_hot[np.arange(codes.shape[0]), codes] = weights
    return np.cumsum(one_hot, axis=0)


def _best_position_for_feature(
    values: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    parent_weighted_impurity: float,
) -> tuple[float, float, int] | None:
    """Best split of one feature; returns ``(gain, threshold, position)``.

    ``position`` is the number of sorted samples that go to the left
    child.  Returns ``None`` when the feature admits no valid split.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    if sorted_values[-1] - sorted_values[0] <= _MIN_VALUE_GAP:
        return None

    prefix = _class_count_prefixes(codes[order], weights[order], n_classes)
    total = prefix[-1]
    n = values.shape[0]

    # Candidate positions i mean "first i sorted samples go left".
    positions = np.arange(1, n)
    distinct = sorted_values[1:] - sorted_values[:-1] > _MIN_VALUE_GAP
    big_enough = (positions >= min_samples_leaf) & (n - positions >= min_samples_leaf)
    valid = distinct & big_enough
    if not valid.any():
        return None
    positions = positions[valid]

    left_counts = prefix[positions - 1]
    right_counts = total[None, :] - left_counts
    left_weight = left_counts.sum(axis=1)
    right_weight = right_counts.sum(axis=1)
    child_weighted = left_weight * criterion(left_counts) + right_weight * criterion(
        right_counts
    )
    gains = parent_weighted_impurity - child_weighted

    best = int(np.argmax(gains))
    position = int(positions[best])
    threshold = 0.5 * (sorted_values[position - 1] + sorted_values[position])
    # Guard against midpoints that collapse onto the left value through
    # floating-point rounding, which would route left-side samples right.
    if threshold <= sorted_values[position - 1]:
        threshold = sorted_values[position - 1]
    return float(gains[best]), float(threshold), position


def find_best_split(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    candidate_features: np.ndarray,
    n_classes: int,
    criterion,
    min_samples_leaf: int,
    min_impurity_decrease: float,
) -> Split | None:
    """Search for the best split of the node holding samples ``index``.

    Parameters
    ----------
    X, codes, weights:
        Full training arrays; ``codes`` are class codes in ``[0, n_classes)``.
    index:
        Row indices of the samples sitting at this node.
    candidate_features:
        Feature ids to consider (already restricted to the tree's feature
        subspace and to the per-split ``max_features`` sample).
    criterion:
        Vectorised impurity function from :mod:`repro.trees.criteria`.
    min_samples_leaf:
        Minimum number of samples (unweighted) in each child.
    min_impurity_decrease:
        Minimum absolute weighted impurity decrease to accept a split.

    Returns
    -------
    Split | None
        The best admissible split, or ``None`` if the node must stay a leaf.
    """
    node_codes = codes[index]
    node_weights = weights[index]
    node_counts = np.zeros(n_classes, dtype=np.float64)
    np.add.at(node_counts, node_codes, node_weights)
    parent_weighted_impurity = float(
        node_counts.sum() * criterion(node_counts[None, :])[0]
    )
    if parent_weighted_impurity <= 0.0:
        return None  # already pure

    best: tuple[float, float, int, int] | None = None  # gain, threshold, pos, feature
    for feature in candidate_features:
        result = _best_position_for_feature(
            X[index, feature],
            node_codes,
            node_weights,
            n_classes,
            criterion,
            min_samples_leaf,
            parent_weighted_impurity,
        )
        if result is None:
            continue
        gain, threshold, position = result
        key = (gain, -int(feature))  # deterministic tie-break: lowest feature id
        if best is None or key > (best[0], -best[3]):
            best = (gain, threshold, position, int(feature))

    if best is None:
        return None
    gain, threshold, _position, feature = best
    if gain < min_impurity_decrease or gain <= 1e-15:
        return None

    node_values = X[index, feature]
    go_left = node_values <= threshold
    return Split(
        feature=feature,
        threshold=threshold,
        gain=gain,
        left_index=index[go_left],
        right_index=index[~go_left],
    )
