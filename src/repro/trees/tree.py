"""Weighted CART decision-tree classifier.

This is the substrate the watermarking scheme trains: a classic
classification tree with exact splits, sample weights, depth and
leaf-count caps, and optional per-split / per-tree feature sampling.
The public surface intentionally mirrors the sklearn estimator idiom
(``fit`` / ``predict`` / ``predict_proba``) so the rest of the library —
and readers familiar with the paper's sklearn implementation — can treat
it as a drop-in stand-in.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_random_state,
    check_sample_weight,
    check_X,
    check_X_y,
)
from ..exceptions import NotFittedError, ValidationError
from .compiled import (
    CompiledTree,
    compile_tree,
    ensure_compiled,
    lazy_compiled,
)
from .criteria import get_criterion
from .growth import GrowthParams, grow_tree
from .node import TreeNode, iter_leaves, predict_batch
from .presort import presorted_dataset

__all__ = ["DecisionTreeClassifier", "resolve_max_features", "SPLITTERS"]

#: Split-search engines: ``"presorted"`` derives node orderings from the
#: per-dataset sort cache and scores all candidate features in one
#: batched evaluation; ``"local"`` is the node-local escape hatch that
#: re-sorts at every node.  Both grow bit-identical trees.
SPLITTERS = ("presorted", "local")


def resolve_max_features(max_features, n_features: int) -> int | None:
    """Resolve a ``max_features`` specification to a concrete count.

    Accepts ``None`` (all features), a positive int, a float fraction in
    (0, 1], or the strings ``"sqrt"`` / ``"log2"``.
    """
    if max_features is None:
        return None
    if isinstance(max_features, (bool, np.bool_)):
        # bool is a subclass of int, so this must be rejected explicitly:
        # silently treating True as "1 feature per split" cripples trees.
        raise ValidationError(
            f"max_features must be None, int, float or str, got bool "
            f"({max_features!r})"
        )
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features)))
        raise ValidationError(
            f"max_features string must be 'sqrt' or 'log2', got {max_features!r}"
        )
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError(
                f"max_features fraction must be in (0, 1], got {max_features}"
            )
        return max(1, int(round(max_features * n_features)))
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValidationError(f"max_features must be >= 1, got {max_features}")
        return min(int(max_features), n_features)
    raise ValidationError(
        f"max_features must be None, int, float or str, got {type(max_features).__name__}"
    )


class DecisionTreeClassifier:
    """A CART-style classification tree with sample-weight support.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_depth:
        Maximum tree depth (root has depth 0); ``None`` means unbounded.
    max_leaf_nodes:
        Cap on the number of leaves; triggers best-first growth.
    min_samples_split:
        Minimum number of samples required to consider splitting a node.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    min_impurity_decrease:
        Minimum absolute weighted impurity decrease to accept a split.
    max_features:
        Features sampled per split: ``None``, int, float fraction,
        ``"sqrt"`` or ``"log2"``.
    feature_subset:
        Optional fixed subspace of feature ids this tree may ever split
        on (assigned by the forest, one subspace per tree).
    splitter:
        Split-search engine, one of :data:`SPLITTERS`.  ``"presorted"``
        (default) reuses the dataset's cached per-feature sort orders
        and batches the candidate-feature evaluation; ``"local"`` is the
        node-local engine that re-sorts at every node.  The fitted tree
        is bit-for-bit identical either way — the switch only trades
        speed.
    random_state:
        Seed or generator for per-split feature sampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        max_leaf_nodes: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features=None,
        feature_subset=None,
        splitter: str = "presorted",
        random_state=None,
    ) -> None:
        self.criterion = criterion
        self.max_depth = max_depth
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.feature_subset = feature_subset
        self.splitter = splitter
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_in_: int | None = None
        self._compiled_: CompiledTree | None = None
        self._compiled_sources_: tuple | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _validate_params(self, n_features: int) -> GrowthParams:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.max_leaf_nodes is not None and self.max_leaf_nodes < 2:
            raise ValidationError(
                f"max_leaf_nodes must be >= 2, got {self.max_leaf_nodes}"
            )
        if self.min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}"
            )
        if self.min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.min_impurity_decrease < 0:
            raise ValidationError(
                f"min_impurity_decrease must be >= 0, got {self.min_impurity_decrease}"
            )
        if self.splitter not in SPLITTERS:
            raise ValidationError(
                f"splitter must be one of {SPLITTERS}, got {self.splitter!r}"
            )
        return GrowthParams(
            criterion=get_criterion(self.criterion),
            max_depth=self.max_depth,
            max_leaf_nodes=self.max_leaf_nodes,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=resolve_max_features(self.max_features, n_features),
        )

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Learn the tree from ``(X, y)`` with optional sample weights."""
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        try:
            y_int = np.asarray(y, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ValidationError("labels must be integers") from exc
        if not np.array_equal(y_int, np.asarray(y)):
            raise ValidationError("labels must be integers")

        classes, codes = np.unique(y_int, return_inverse=True)
        params = self._validate_params(X.shape[1])

        if self.feature_subset is None:
            subspace = np.arange(X.shape[1])
        else:
            subspace = np.asarray(self.feature_subset, dtype=np.int64)
            if subspace.ndim != 1 or subspace.size == 0:
                raise ValidationError("feature_subset must be a non-empty 1-D index array")
            if subspace.min() < 0 or subspace.max() >= X.shape[1]:
                raise ValidationError("feature_subset contains out-of-range feature ids")
            subspace = np.unique(subspace)

        rng = check_random_state(self.random_state)
        presort = presorted_dataset(X) if self.splitter == "presorted" else None
        self.root_ = grow_tree(
            X, codes, weights, subspace, classes, params, rng, presort
        )
        self.classes_ = classes
        self.n_features_in_ = X.shape[1]
        self._compiled_ = None
        self._compiled_sources_ = None
        return self

    # ------------------------------------------------------------------
    # Prediction and structure
    # ------------------------------------------------------------------

    def _check_fitted(self) -> TreeNode:
        if self.root_ is None:
            raise NotFittedError("this DecisionTreeClassifier is not fitted yet")
        return self.root_

    def _check_predict_input(self, X) -> np.ndarray:
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the tree was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def compile(self) -> CompiledTree:
        """Flatten the fitted tree into its compiled array form.

        The result is cached and reused by ``predict`` /
        ``predict_proba`` until ``root_`` is replaced (refit, pruning,
        modification attacks); call again after such surgery to refresh
        eagerly.  See :mod:`repro.trees.compiled` for the engine and the
        ``object`` backend escape hatch.
        """
        root = self._check_fitted()
        return ensure_compiled(
            self, (root,), lambda: compile_tree(root, classes=self.classes_)
        )

    def _compiled_engine(self, n_rows: int) -> CompiledTree | None:
        """The compiled engine to predict with, or ``None`` for object mode.

        Lazily compiles on first predict, except for tiny batches where
        flattening would cost more than it saves (a cached engine is
        used whatever the batch size).
        """
        root = self._check_fitted()
        return lazy_compiled(
            self,
            (root,),
            n_rows,
            lambda: compile_tree(root, classes=self.classes_),
        )

    def predict(self, X) -> np.ndarray:
        """Predict class labels for ``X``."""
        root = self._check_fitted()
        X = self._check_predict_input(X)
        engine = self._compiled_engine(X.shape[0])
        if engine is not None:
            return engine.predict(X)
        return predict_batch(root, X)

    def predict_proba(self, X) -> np.ndarray:
        """Predict class-membership probabilities from leaf class masses.

        Columns follow the order of :attr:`classes_`.  Hand-built leaves
        without recorded class weights predict probability 1 for their
        label.
        """
        root = self._check_fitted()
        X = self._check_predict_input(X)
        assert self.classes_ is not None
        engine = self._compiled_engine(X.shape[0])
        if engine is not None and engine.leaf_proba is not None:
            return engine.predict_proba(X)
        class_position = {int(c): i for i, c in enumerate(self.classes_)}
        out = np.zeros((X.shape[0], self.classes_.shape[0]), dtype=np.float64)

        stack: list[tuple[TreeNode, np.ndarray]] = [(root, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                total = node.total_weight()  # type: ignore[union-attr]
                row = np.zeros(self.classes_.shape[0])
                if total > 0:
                    for label, mass in node.class_weights.items():  # type: ignore[union-attr]
                        row[class_position[label]] = mass / total
                else:
                    row[class_position[int(node.prediction)]] = 1.0  # type: ignore[union-attr]
                out[idx] = row
                continue
            go_left = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return out

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (a lone leaf has depth 0)."""
        return self._check_fitted().depth()

    @property
    def n_leaves_(self) -> int:
        """Number of leaves of the fitted tree."""
        return self._check_fitted().n_leaves()

    def used_features_(self) -> set[int]:
        """Feature ids actually used by some internal node."""
        from .node import iter_nodes

        return {
            node.feature
            for node in iter_nodes(self._check_fitted())
            if not node.is_leaf
        }

    def leaves(self):
        """Iterate over the leaves of the fitted tree, left-to-right."""
        return iter_leaves(self._check_fitted())

    def score(self, X, y, sample_weight=None) -> float:
        """Weighted accuracy on ``(X, y)``."""
        X, y = check_X_y(X, y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        correct = (self.predict(X) == np.asarray(y)).astype(np.float64)
        return float(np.average(correct, weights=weights))
