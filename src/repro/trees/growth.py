"""Tree growth strategies: depth-first and best-first (leaf-capped).

Two builders are provided because the paper's ``Adjust`` heuristic caps
*both* the depth and the number of leaves of the trained trees.  A cap
on ``max_leaf_nodes`` only makes sense with best-first growth (always
expand the frontier leaf with the largest impurity decrease, as sklearn
does); without a leaf cap, classic depth-first growth is used.

When a dataset presort is supplied, both builders maintain a
:class:`~repro.trees.presort.NodeOrdering` per frame: the root's
feature-sorted lanes come from the global sort cache, and every split
*partitions* the parent's lanes into the children's with one stable
boolean compress per lane — no node ever re-sorts, and no per-node work
depends on the full dataset size.  Orderings are an acceleration only:
the grown tree is bit-for-bit identical with and without them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from .criteria import weighted_class_counts
from .node import InternalNode, Leaf, TreeNode
from .presort import NodeOrdering, partition_ordering, root_ordering
from .splitter import Split, find_best_split

__all__ = ["GrowthParams", "grow_tree"]


@dataclass
class GrowthParams:
    """Hyper-parameters controlling tree induction.

    ``max_features`` is the number of features sampled (without
    replacement) at *each split*; ``feature_subset`` restricts the whole
    tree to a fixed subspace (the forest assigns one per tree, which is
    how the paper's "each tree is trained on a subset of the features"
    is realised).
    """

    criterion: object
    max_depth: int | None = None
    max_leaf_nodes: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    min_impurity_decrease: float = 0.0
    max_features: int | None = None


def _make_leaf(
    index: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    classes: np.ndarray,
) -> Leaf:
    """Build a leaf predicting the weighted-majority class of ``index``."""
    counts = weighted_class_counts(codes[index], weights[index], classes.shape[0])
    prediction = int(classes[int(np.argmax(counts))])
    class_weights = {
        int(classes[c]): float(counts[c]) for c in range(classes.shape[0]) if counts[c] > 0
    }
    return Leaf(prediction=prediction, class_weights=class_weights)


def _candidate_features(
    subspace: np.ndarray, params: GrowthParams, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray | None]:
    """Sample the features considered by one split.

    Returns ``(features, positions)`` where ``positions`` locates the
    sample within the subspace (``None`` when every subspace feature is
    considered) — the positions index the node ordering's lanes.
    """
    if params.max_features is None or params.max_features >= subspace.shape[0]:
        return subspace, None
    chosen = rng.choice(subspace.shape[0], size=params.max_features, replace=False)
    positions = np.sort(chosen)
    return subspace[positions], positions


def _child_can_split(k: int, depth: int, params: GrowthParams) -> bool:
    """Whether a child of size ``k`` at ``depth`` can possibly split.

    Mirrors the early-out checks of :func:`_search_split`; children that
    fail them become leaves, so partitioning an ordering for them would
    be wasted work.
    """
    if params.max_depth is not None and depth >= params.max_depth:
        return False
    return k >= params.min_samples_split and k >= 2 * params.min_samples_leaf


def _child_orderings(
    presort,
    ordering: NodeOrdering | None,
    split: Split,
    child_depth: int,
    params: GrowthParams,
) -> tuple[NodeOrdering | None, NodeOrdering | None]:
    """Partition a split node's ordering for the children that need one."""
    if ordering is None:
        return None, None
    want_left = _child_can_split(split.left_index.shape[0], child_depth, params)
    want_right = _child_can_split(split.right_index.shape[0], child_depth, params)
    if not (want_left or want_right):
        return None, None
    return partition_ordering(
        presort, ordering, split.left_index, split.right_index, want_left, want_right
    )


def _search_split(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    depth: int,
    subspace: np.ndarray,
    n_classes: int,
    params: GrowthParams,
    rng: np.random.Generator,
    ordering: NodeOrdering | None = None,
) -> Split | None:
    """Find a split for a node, honouring all stopping criteria."""
    if params.max_depth is not None and depth >= params.max_depth:
        return None
    if index.shape[0] < params.min_samples_split:
        return None
    if index.shape[0] < 2 * params.min_samples_leaf:
        return None
    features, positions = _candidate_features(subspace, params, rng)
    split = find_best_split(
        X,
        codes,
        weights,
        index,
        features,
        n_classes,
        params.criterion,
        params.min_samples_leaf,
        params.min_impurity_decrease,
        ordering=ordering,
        lane_positions=positions,
    )
    if split is None and positions is not None:
        # The sampled feature subset may have been uninformative even
        # though the node is impure; retry once with the full subspace so
        # trees can still isolate heavily-weighted trigger samples.
        # (``positions is None`` means the first search already covered
        # the whole subspace — a retry would repeat it verbatim.)
        split = find_best_split(
            X,
            codes,
            weights,
            index,
            subspace,
            n_classes,
            params.criterion,
            params.min_samples_leaf,
            params.min_impurity_decrease,
            ordering=ordering,
        )
    return split


def _grow_depth_first(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
    presort=None,
) -> TreeNode:
    """Classic recursive growth (explicit stack, no recursion limits)."""
    n_classes = classes.shape[0]
    ordering = (
        root_ordering(presort, index, subspace, codes, weights)
        if presort is not None
        else None
    )
    # Each frame is (index, depth, parent, side, ordering); parent None
    # means root.
    root_holder: list[TreeNode] = []
    stack: list[tuple[np.ndarray, int, InternalNode | None, str, NodeOrdering | None]] = [
        (index, 0, None, "left", ordering)
    ]
    while stack:
        node_index, depth, parent, side, node_ordering = stack.pop()
        split = _search_split(
            X, codes, weights, node_index, depth, subspace, n_classes, params, rng,
            node_ordering,
        )
        node: TreeNode
        if split is None:
            node = _make_leaf(node_index, codes, weights, classes)
        else:
            node = InternalNode(
                feature=split.feature,
                threshold=split.threshold,
                left=None,  # type: ignore[arg-type]
                right=None,  # type: ignore[arg-type]
            )
            left_ordering, right_ordering = _child_orderings(
                presort, node_ordering, split, depth + 1, params
            )
            stack.append((split.left_index, depth + 1, node, "left", left_ordering))
            stack.append((split.right_index, depth + 1, node, "right", right_ordering))
        if parent is None:
            root_holder.append(node)
        elif side == "left":
            parent.left = node
        else:
            parent.right = node
    return root_holder[0]


def _grow_best_first(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
    presort=None,
) -> TreeNode:
    """Best-first growth: repeatedly expand the frontier leaf with the
    largest weighted impurity decrease until ``max_leaf_nodes`` is hit."""
    n_classes = classes.shape[0]
    max_leaves = params.max_leaf_nodes
    assert max_leaves is not None and max_leaves >= 2

    counter = itertools.count()  # heap tie-breaker for determinism

    @dataclass
    class _Frontier:
        index: np.ndarray
        depth: int
        parent: InternalNode | None
        side: str
        split: Split | None
        ordering: NodeOrdering | None

    def _attach(parent: InternalNode | None, side: str, node: TreeNode) -> None:
        nonlocal root
        if parent is None:
            root = node
        elif side == "left":
            parent.left = node
        else:
            parent.right = node

    root: TreeNode = _make_leaf(index, codes, weights, classes)
    heap: list[tuple[float, int, _Frontier]] = []

    def _push(entry: _Frontier) -> None:
        entry.split = _search_split(
            X, codes, weights, entry.index, entry.depth, subspace, n_classes, params,
            rng, entry.ordering,
        )
        if entry.split is None:
            entry.ordering = None  # nothing left to partition; free the lanes
            _attach(entry.parent, entry.side, _make_leaf(entry.index, codes, weights, classes))
        else:
            heapq.heappush(heap, (-entry.split.gain, next(counter), entry))

    ordering = (
        root_ordering(presort, index, subspace, codes, weights)
        if presort is not None
        else None
    )
    _push(
        _Frontier(
            index=index, depth=0, parent=None, side="left", split=None,
            ordering=ordering,
        )
    )
    n_leaves = 1
    while heap and n_leaves < max_leaves:
        _, _, entry = heapq.heappop(heap)
        split = entry.split
        assert split is not None
        node = InternalNode(
            feature=split.feature,
            threshold=split.threshold,
            left=_make_leaf(split.left_index, codes, weights, classes),
            right=_make_leaf(split.right_index, codes, weights, classes),
        )
        _attach(entry.parent, entry.side, node)
        n_leaves += 1  # one leaf became two
        left_ordering, right_ordering = _child_orderings(
            presort, entry.ordering, split, entry.depth + 1, params
        )
        entry.ordering = None
        _push(
            _Frontier(
                split.left_index, entry.depth + 1, node, "left", None, left_ordering
            )
        )
        _push(
            _Frontier(
                split.right_index, entry.depth + 1, node, "right", None, right_ordering
            )
        )
    # Frontier nodes never expanded stay as the provisional leaves they
    # already are (attached when their parents were created).
    return root


def grow_tree(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
    presort=None,
) -> TreeNode:
    """Grow a decision tree over the full training set.

    Chooses best-first growth when ``max_leaf_nodes`` is set (so the cap
    binds on the most useful expansions first, like sklearn) and
    depth-first growth otherwise.  ``presort`` optionally supplies the
    dataset's :class:`~repro.trees.presort.SortedDataset`; split search
    results are bit-identical with and without it.
    """
    index = np.arange(X.shape[0])
    positive_weight = weights[index] > 0
    if not positive_weight.all():
        index = index[positive_weight]
    if params.max_leaf_nodes is not None:
        return _grow_best_first(
            X, codes, weights, index, subspace, classes, params, rng, presort
        )
    return _grow_depth_first(
        X, codes, weights, index, subspace, classes, params, rng, presort
    )
