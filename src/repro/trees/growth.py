"""Tree growth strategies: depth-first and best-first (leaf-capped).

Two builders are provided because the paper's ``Adjust`` heuristic caps
*both* the depth and the number of leaves of the trained trees.  A cap
on ``max_leaf_nodes`` only makes sense with best-first growth (always
expand the frontier leaf with the largest impurity decrease, as sklearn
does); without a leaf cap, classic depth-first growth is used.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from .node import InternalNode, Leaf, TreeNode
from .splitter import Split, find_best_split

__all__ = ["GrowthParams", "grow_tree"]


@dataclass
class GrowthParams:
    """Hyper-parameters controlling tree induction.

    ``max_features`` is the number of features sampled (without
    replacement) at *each split*; ``feature_subset`` restricts the whole
    tree to a fixed subspace (the forest assigns one per tree, which is
    how the paper's "each tree is trained on a subset of the features"
    is realised).
    """

    criterion: object
    max_depth: int | None = None
    max_leaf_nodes: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    min_impurity_decrease: float = 0.0
    max_features: int | None = None


def _make_leaf(
    index: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    classes: np.ndarray,
) -> Leaf:
    """Build a leaf predicting the weighted-majority class of ``index``."""
    counts = np.zeros(classes.shape[0], dtype=np.float64)
    np.add.at(counts, codes[index], weights[index])
    prediction = int(classes[int(np.argmax(counts))])
    class_weights = {
        int(classes[c]): float(counts[c]) for c in range(classes.shape[0]) if counts[c] > 0
    }
    return Leaf(prediction=prediction, class_weights=class_weights)


def _candidate_features(
    subspace: np.ndarray, params: GrowthParams, rng: np.random.Generator
) -> np.ndarray:
    """Sample the features considered by one split."""
    if params.max_features is None or params.max_features >= subspace.shape[0]:
        return subspace
    chosen = rng.choice(subspace.shape[0], size=params.max_features, replace=False)
    return subspace[np.sort(chosen)]


def _search_split(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    depth: int,
    subspace: np.ndarray,
    n_classes: int,
    params: GrowthParams,
    rng: np.random.Generator,
) -> Split | None:
    """Find a split for a node, honouring all stopping criteria."""
    if params.max_depth is not None and depth >= params.max_depth:
        return None
    if index.shape[0] < params.min_samples_split:
        return None
    if index.shape[0] < 2 * params.min_samples_leaf:
        return None
    split = find_best_split(
        X,
        codes,
        weights,
        index,
        _candidate_features(subspace, params, rng),
        n_classes,
        params.criterion,
        params.min_samples_leaf,
        params.min_impurity_decrease,
    )
    if split is None and params.max_features is not None:
        # The sampled feature subset may have been uninformative even
        # though the node is impure; retry once with the full subspace so
        # trees can still isolate heavily-weighted trigger samples.
        split = find_best_split(
            X,
            codes,
            weights,
            index,
            subspace,
            n_classes,
            params.criterion,
            params.min_samples_leaf,
            params.min_impurity_decrease,
        )
    return split


def _grow_depth_first(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
) -> TreeNode:
    """Classic recursive growth (explicit stack, no recursion limits)."""
    n_classes = classes.shape[0]
    # Each frame is (index, depth, parent, side); parent None means root.
    root_holder: list[TreeNode] = []
    stack: list[tuple[np.ndarray, int, InternalNode | None, str]] = [
        (index, 0, None, "left")
    ]
    while stack:
        node_index, depth, parent, side = stack.pop()
        split = _search_split(
            X, codes, weights, node_index, depth, subspace, n_classes, params, rng
        )
        node: TreeNode
        if split is None:
            node = _make_leaf(node_index, codes, weights, classes)
        else:
            node = InternalNode(
                feature=split.feature,
                threshold=split.threshold,
                left=None,  # type: ignore[arg-type]
                right=None,  # type: ignore[arg-type]
            )
            stack.append((split.left_index, depth + 1, node, "left"))
            stack.append((split.right_index, depth + 1, node, "right"))
        if parent is None:
            root_holder.append(node)
        elif side == "left":
            parent.left = node
        else:
            parent.right = node
    return root_holder[0]


def _grow_best_first(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
) -> TreeNode:
    """Best-first growth: repeatedly expand the frontier leaf with the
    largest weighted impurity decrease until ``max_leaf_nodes`` is hit."""
    n_classes = classes.shape[0]
    max_leaves = params.max_leaf_nodes
    assert max_leaves is not None and max_leaves >= 2

    counter = itertools.count()  # heap tie-breaker for determinism

    @dataclass
    class _Frontier:
        index: np.ndarray
        depth: int
        parent: InternalNode | None
        side: str
        split: Split | None

    def _attach(parent: InternalNode | None, side: str, node: TreeNode) -> None:
        nonlocal root
        if parent is None:
            root = node
        elif side == "left":
            parent.left = node
        else:
            parent.right = node

    root: TreeNode = _make_leaf(index, codes, weights, classes)
    heap: list[tuple[float, int, _Frontier]] = []

    def _push(entry: _Frontier) -> None:
        entry.split = _search_split(
            X, codes, weights, entry.index, entry.depth, subspace, n_classes, params, rng
        )
        if entry.split is None:
            _attach(entry.parent, entry.side, _make_leaf(entry.index, codes, weights, classes))
        else:
            heapq.heappush(heap, (-entry.split.gain, next(counter), entry))

    _push(_Frontier(index=index, depth=0, parent=None, side="left", split=None))
    n_leaves = 1
    while heap and n_leaves < max_leaves:
        _, _, entry = heapq.heappop(heap)
        split = entry.split
        assert split is not None
        node = InternalNode(
            feature=split.feature,
            threshold=split.threshold,
            left=_make_leaf(split.left_index, codes, weights, classes),
            right=_make_leaf(split.right_index, codes, weights, classes),
        )
        _attach(entry.parent, entry.side, node)
        n_leaves += 1  # one leaf became two
        _push(_Frontier(split.left_index, entry.depth + 1, node, "left", None))
        _push(_Frontier(split.right_index, entry.depth + 1, node, "right", None))
    # Frontier nodes never expanded stay as the provisional leaves they
    # already are (attached when their parents were created).
    return root


def grow_tree(
    X: np.ndarray,
    codes: np.ndarray,
    weights: np.ndarray,
    subspace: np.ndarray,
    classes: np.ndarray,
    params: GrowthParams,
    rng: np.random.Generator,
) -> TreeNode:
    """Grow a decision tree over the full training set.

    Chooses best-first growth when ``max_leaf_nodes`` is set (so the cap
    binds on the most useful expansions first, like sklearn) and
    depth-first growth otherwise.
    """
    index = np.arange(X.shape[0])
    positive_weight = weights[index] > 0
    if not positive_weight.all():
        index = index[positive_weight]
    if params.max_leaf_nodes is not None:
        return _grow_best_first(X, codes, weights, index, subspace, classes, params, rng)
    return _grow_depth_first(X, codes, weights, index, subspace, classes, params, rng)
