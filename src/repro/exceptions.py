"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError` from unrelated code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are malformed."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before :meth:`fit` was called."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative procedure fails to converge.

    The watermark embedding loop (``TrainWithTrigger`` in the paper's
    Algorithm 1) re-weights trigger samples until every tree fits them;
    this error reports a diagnostic instead of looping forever when the
    hyper-parameters make a perfect fit impossible.
    """

    def __init__(self, message: str, rounds: int = 0) -> None:
        super().__init__(message)
        #: Number of re-weighting rounds performed before giving up.
        self.rounds = rounds


class SolverError(ReproError, RuntimeError):
    """Raised when a SAT/SMT solver is used incorrectly or exceeds limits."""


class ResourceLimitError(SolverError):
    """Raised when a solver exceeds its configured conflict/time budget."""


class VerificationError(ReproError, RuntimeError):
    """Raised when the verification protocol receives inconsistent inputs.

    This covers judge-side sanity failures (e.g. a trigger set that is not
    contained in the disclosed test set), *not* a failed ownership claim:
    a claim that simply does not match is reported as a normal
    :class:`repro.core.verification.VerificationReport` with
    ``accepted=False``.
    """


class SerializationError(ReproError, ValueError):
    """Raised when persisted model data cannot be decoded."""
