"""Deterministic fault injection for the serving stack.

The ROADMAP's deployment picture — heavy traffic from millions of
users — makes failure a certainty, not an exception: engine calls hang,
artefacts get half-written, connections drop mid-response.  This
package makes those failures a first-class, *seeded* input to the
system, the same way :mod:`repro.traffic` made adversarial queries one:
a :class:`FaultPlan` is a pure function of its seed (block-indexed like
the traffic generators, byte-identical across runs) that compiles to a
:class:`FaultInjector` threaded into the serving layers via explicit
``fault_injector=`` hooks.  The production default everywhere is
``None`` — no injector object, no per-call branch cost beyond one
``is not None`` check.

Injection sites (see :data:`SITES`):

``engine.call``
    Latency spikes and exceptions inside the fused engine call
    (:meth:`repro.serve.registry.ServedModel.serve_batch`).
``batcher.flush``
    Exceptions at the micro-batcher's fused-call boundary — every
    request in the flush observes the failure.
``registry.load``
    Artefact load / hot-reload failures in the model registry.
``artefact.corrupt``
    Corrupt artefact bytes on reload: the injector serves a copy of the
    artefact with one bit flipped, which the loader's CRC check must
    refuse before the old engine is replaced.
``conn.reset``
    The daemon drops the connection instead of writing the response
    (the response may already have been computed — exactly the case
    idempotency keys exist for).
``conn.slow``
    The daemon trickles the response out after a delay (a slow peer),
    exercising client timeouts and retries.
"""

from .injector import FaultInjector, InjectedFault, corrupted_copy
from .plan import SITES, FaultDecision, FaultPlan, FaultSpec

__all__ = [
    "SITES",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "corrupted_copy",
]
