"""The stateful side of fault injection: counters, firing, telemetry.

A :class:`FaultInjector` wraps a :class:`~repro.faults.plan.FaultPlan`
with one event counter per site.  ``decide(site)`` advances the
counter and returns the plan's decision for that event; ``fire(site)``
additionally *executes* latency/error decisions (sleep / raise), which
is all most call sites need.  Counters sit behind a lock because the
daemon consults the injector from executor threads and the event loop
alike.

Call sites hold ``fault_injector=None`` in production: the only cost a
deployed daemon pays for this subsystem is an ``is not None`` branch.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from ..exceptions import ReproError

__all__ = ["FaultInjector", "InjectedFault", "corrupted_copy"]


class InjectedFault(ReproError, RuntimeError):
    """An error deliberately raised by the fault plan.

    Typed so the chaos battery can tell injected failures from real
    bugs: a chaos run may see any number of ``InjectedFault``\\ s, but
    any *other* exception is a test failure.
    """

    def __init__(self, decision) -> None:
        super().__init__(
            f"injected fault at {decision.site!r} "
            f"(event {decision.index}, kind {decision.kind})"
        )
        self.decision = decision


class FaultInjector:
    """Thread-safe event counters over an immutable plan."""

    def __init__(self, plan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def decide(self, site: str):
        """Advance ``site``'s counter; return its decision (or ``None``)."""
        if site not in self.plan.specs:
            return None
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
        decision = self.plan.decision(site, index)
        if decision is not None:
            with self._lock:
                self._fired[site] = self._fired.get(site, 0) + 1
        return decision

    def fire(self, site: str) -> None:
        """Execute the next decision at ``site`` in blocking code.

        ``latency`` sleeps, ``error`` raises :class:`InjectedFault`;
        other kinds are returned to nobody — use :meth:`decide` when
        the call site needs to interpret the decision itself.
        """
        decision = self.decide(site)
        if decision is None:
            return
        if decision.kind == "latency":
            time.sleep(decision.delay)
        elif decision.kind == "error":
            raise InjectedFault(decision)

    def counts(self) -> dict:
        """Telemetry: per-site ``{"events": n, "fired": m}``."""
        with self._lock:
            return {
                site: {
                    "events": self._counters.get(site, 0),
                    "fired": self._fired.get(site, 0),
                }
                for site in sorted(self.plan.specs)
            }

    def reset(self) -> None:
        """Rewind every site to event 0 (replay the same fault stream)."""
        with self._lock:
            self._counters.clear()
            self._fired.clear()


def corrupted_copy(path, decision, target_dir=None) -> Path:
    """A copy of ``path`` with one deterministically-chosen bit flipped.

    Used by the registry's hot-reload path when the ``artefact.corrupt``
    site fires: loading the corrupted copy must fail the format's CRC
    check, proving a half-written or damaged artefact can never replace
    a serving engine.  The flipped bit is picked from the decision's
    salt, skipping the first 16 bytes so the format magic stays intact
    (a wrong magic would test dispatch, not integrity checking).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if len(data) <= 16:
        raise ReproError(f"artefact {path} too small to corrupt")
    position = 16 + decision.salt % (len(data) - 16)
    data[position] ^= 1 << (decision.salt % 8)
    target_dir = Path(target_dir) if target_dir is not None else path.parent
    target = target_dir / (path.name + f".corrupt-{decision.index}")
    target.write_bytes(bytes(data))
    return target
