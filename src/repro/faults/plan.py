"""Seeded fault plans: which call fails, how, decided ahead of time.

A :class:`FaultPlan` follows the :mod:`repro.traffic` seeding contract:
every injection site owns an independent sub-stream derived purely from
``(root entropy, site name, block index)`` via
:func:`repro.traffic.base.child_seed`, and decisions inside a block are
drawn vectorised.  Consequences, regression-tested in
``tests/faults/``:

- same seed ⇒ byte-identical decision sequences at every site,
  regardless of how the other sites are consumed;
- the ``i``-th event at a site always receives the same decision, so a
  chaos run is replayable from ``(plan parameters, seed)`` alone;
- ``block_size`` is part of the plan's identity, exactly as it is for
  traffic generators.

The plan itself is immutable; :meth:`FaultPlan.compile` produces the
stateful (counter-carrying, thread-safe) :class:`FaultInjector` that
the serving layers consult.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..traffic.base import as_seed_sequence, child_seed

__all__ = ["SITES", "FaultDecision", "FaultPlan", "FaultSpec"]

#: Every injection site the serving stack consults, with the fault
#: kinds that make sense there.  A plan may cover any subset; sites it
#: does not cover never fire.
SITES: dict[str, tuple[str, ...]] = {
    "engine.call": ("latency", "error"),
    "batcher.flush": ("error",),
    "registry.load": ("error",),
    "artefact.corrupt": ("corrupt",),
    "conn.reset": ("reset",),
    "conn.slow": ("slow",),
}


@dataclass(frozen=True)
class FaultSpec:
    """How one injection site misbehaves.

    ``rate`` is the per-event firing probability; ``kinds`` (drawn
    uniformly when the event fires) must be allowed for the site;
    ``max_delay`` bounds the latency drawn for ``latency``/``slow``
    kinds (uniform over ``(0, max_delay]``-ish; exact zero delays are
    avoided so a fired delay is always observable).
    """

    site: str
    rate: float
    kinds: tuple[str, ...] = ()
    max_delay: float = 0.02

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValidationError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        kinds = self.kinds or SITES[self.site]
        for kind in kinds:
            if kind not in SITES[self.site]:
                raise ValidationError(
                    f"fault kind {kind!r} is not valid at site "
                    f"{self.site!r} (allowed: {SITES[self.site]})"
                )
        object.__setattr__(self, "kinds", tuple(kinds))
        if self.max_delay <= 0:
            raise ValidationError(
                f"max_delay must be positive, got {self.max_delay}"
            )


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one event at one site.

    ``index`` is the event's position in the site's stream; ``salt`` is
    a deterministic per-decision integer the corrupt-artefact path uses
    to pick which bit to flip.
    """

    site: str
    index: int
    kind: str
    delay: float = 0.0
    salt: int = 0


class FaultPlan:
    """An immutable, seeded schedule of failures across named sites."""

    def __init__(self, specs, seed=None, block_size: int = 1024) -> None:
        if block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        specs = tuple(specs)
        names = [spec.site for spec in specs]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate fault sites in plan: {names}")
        self.specs: dict[str, FaultSpec] = {spec.site: spec for spec in specs}
        self.seed = as_seed_sequence(seed)
        self.block_size = int(block_size)
        # Site sub-streams are keyed by the site's position in the
        # *sorted* site list, so the decision stream at a site depends
        # only on (entropy, site name, block) — not on spec order.
        self._site_index = {
            site: i for i, site in enumerate(sorted(SITES))
        }

    @classmethod
    def chaos(
        cls,
        seed,
        rate: float = 0.2,
        *,
        sites=("engine.call", "conn.reset", "conn.slow"),
        max_delay: float = 0.02,
        block_size: int = 1024,
    ) -> "FaultPlan":
        """A uniform-rate plan over ``sites`` — the chaos-battery default."""
        return cls(
            [FaultSpec(site=s, rate=rate, max_delay=max_delay) for s in sites],
            seed=seed,
            block_size=block_size,
        )

    # -- decision streams ------------------------------------------------

    def _block(self, spec: FaultSpec, block_index: int):
        """Vectorised decisions for one block of one site's stream."""
        site_seed = child_seed(self.seed, self._site_index[spec.site])
        rng = np.random.default_rng(child_seed(site_seed, block_index))
        n = self.block_size
        fired = rng.random(n) < spec.rate
        kind_idx = rng.integers(0, len(spec.kinds), size=n)
        # Delays in (0, max_delay]: 1 - U[0, 1) never collapses to 0.
        delays = (1.0 - rng.random(n)) * spec.max_delay
        salts = rng.integers(0, 2**31 - 1, size=n)
        return fired, kind_idx, delays, salts

    def decision(self, site: str, index: int) -> FaultDecision | None:
        """The decision for event ``index`` at ``site`` (pure function)."""
        spec = self.specs.get(site)
        if spec is None or index < 0:
            return None
        block, offset = divmod(int(index), self.block_size)
        fired, kind_idx, delays, salts = self._block(spec, block)
        if not fired[offset]:
            return None
        kind = spec.kinds[kind_idx[offset]]
        return FaultDecision(
            site=site,
            index=int(index),
            kind=kind,
            delay=float(delays[offset]) if kind in ("latency", "slow") else 0.0,
            salt=int(salts[offset]),
        )

    def preview(self, site: str, n: int) -> list:
        """The first ``n`` decisions at ``site`` (``None`` = no fault).

        Non-mutating — the injector's counters are untouched — so two
        plans can be compared for byte-identity without running them.
        """
        return [self.decision(site, i) for i in range(int(n))]

    def compile(self) -> "FaultInjector":
        """The stateful injector the serving layers consult."""
        from .injector import FaultInjector

        return FaultInjector(self)

    def describe(self) -> dict:
        """JSON-safe summary (for logs and benchmark artefacts)."""
        return {
            "block_size": self.block_size,
            "sites": {
                site: {
                    "rate": spec.rate,
                    "kinds": list(spec.kinds),
                    "max_delay": spec.max_delay,
                }
                for site, spec in sorted(self.specs.items())
            },
        }
