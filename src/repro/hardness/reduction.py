"""The paper's reduction ⟦·⟧ from 3SAT to watermark forgery (Theorem 1).

Each clause ``ψ_i`` becomes a decision tree of depth ≤ 3: every internal
node branches on a variable with threshold 0 (left = false, right =
true), and the leaves labelled ``+1`` encode sufficient conditions for
the clause's satisfiability.  The whole formula becomes an ensemble
(one tree per clause); the formula is satisfiable iff the watermark
forgery problem has a solution for label ``+1`` and the all-zeros
signature.

The conversion below follows the paper's inductive definition exactly::

    ⟦l⟧  =  N(x ≤ 0, L(-1), L(+1))      if l = x
            N(x ≤ 0, L(+1), L(-1))      if l = ¬x
    ⟦ψ⟧  =  ⟦l⟧                          if ψ = l
            N(x ≤ 0, ⟦ψ'⟧, L(+1))        if ψ = x ∨ ψ'
            N(x ≤ 0, L(+1), ⟦ψ'⟧)        if ψ = ¬x ∨ ψ'
    ⟦φ⟧  =  one tree per clause of φ
"""

from __future__ import annotations

import numpy as np

from ..core.signature import Signature
from ..solver.problem import PatternProblem
from ..trees.node import InternalNode, Leaf, TreeNode
from .threesat import Clause, Formula3CNF, Literal

__all__ = [
    "literal_to_tree",
    "clause_to_tree",
    "formula_to_ensemble",
    "forgery_problem_from_formula",
    "instance_to_assignment",
    "assignment_to_instance",
]


def literal_to_tree(literal: Literal) -> TreeNode:
    """⟦l⟧ — a depth-1 tree accepting exactly the satisfying value."""
    if literal.negated:
        return InternalNode(
            feature=literal.variable, threshold=0.0, left=Leaf(+1), right=Leaf(-1)
        )
    return InternalNode(
        feature=literal.variable, threshold=0.0, left=Leaf(-1), right=Leaf(+1)
    )


def clause_to_tree(clause: Clause) -> TreeNode:
    """⟦ψ⟧ — chain the clause's literals into a tree of depth ≤ 3."""
    literals = list(clause.literals)

    def build(remaining: list[Literal]) -> TreeNode:
        head = remaining[0]
        if len(remaining) == 1:
            return literal_to_tree(head)
        rest = build(remaining[1:])
        if head.negated:
            # ψ = ¬x ∨ ψ': x false (left) already satisfies the clause.
            return InternalNode(
                feature=head.variable, threshold=0.0, left=Leaf(+1), right=rest
            )
        # ψ = x ∨ ψ': x true (right) already satisfies the clause.
        return InternalNode(
            feature=head.variable, threshold=0.0, left=rest, right=Leaf(+1)
        )

    return build(literals)


def formula_to_ensemble(formula: Formula3CNF) -> list[TreeNode]:
    """⟦φ⟧ — one tree per clause; variables are features with threshold 0."""
    return [clause_to_tree(clause) for clause in formula.clauses]


def forgery_problem_from_formula(formula: Formula3CNF) -> PatternProblem:
    """The watermark forgery instance equivalent to 3SAT on ``formula``.

    Label ``+1``, signature ``⟨0, …, 0⟩`` (every tree must output +1),
    features range over ``[-1, 1]`` so both branches of the threshold-0
    splits are reachable.
    """
    roots = formula_to_ensemble(formula)
    return PatternProblem(
        roots=roots,
        required=[+1] * len(roots),
        n_features=formula.n_vars,
        domain=(-1.0, 1.0),
    )


def instance_to_assignment(x: np.ndarray) -> list[bool]:
    """Map a forgery solution back to boolean values: ``x_j`` true iff
    the ``j``-th component is positive (the paper's final step)."""
    return [bool(value > 0) for value in np.asarray(x, dtype=np.float64)]


def assignment_to_instance(assignment: list[bool]) -> np.ndarray:
    """The converse embedding: true ↦ +1 (right branch), false ↦ −1."""
    return np.array([1.0 if value else -1.0 for value in assignment], dtype=np.float64)


def all_zero_signature(formula: Formula3CNF) -> Signature:
    """The signature used by the reduction (all trees must agree with +1)."""
    return Signature.from_iterable([0] * len(formula.clauses))
