"""NP-hardness machinery for the watermark forgery problem (Theorem 1)."""

from .reduction import (
    all_zero_signature,
    assignment_to_instance,
    clause_to_tree,
    forgery_problem_from_formula,
    formula_to_ensemble,
    instance_to_assignment,
    literal_to_tree,
)
from .threesat import Clause, Formula3CNF, Literal, brute_force_3sat, random_3cnf

__all__ = [
    "Clause",
    "Formula3CNF",
    "Literal",
    "all_zero_signature",
    "assignment_to_instance",
    "brute_force_3sat",
    "clause_to_tree",
    "forgery_problem_from_formula",
    "formula_to_ensemble",
    "instance_to_assignment",
    "literal_to_tree",
    "random_3cnf",
]
