"""3CNF formulas: the source problem of the NP-hardness reduction.

A literal is a variable or its negation; a clause is a disjunction of
at most three literals; a 3CNF formula is a conjunction of clauses —
exactly the grammar in the paper's proof of Theorem 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .._validation import check_random_state
from ..exceptions import ValidationError

__all__ = ["Literal", "Clause", "Formula3CNF", "random_3cnf", "brute_force_3sat"]


@dataclass(frozen=True)
class Literal:
    """A boolean variable (0-indexed) or its negation."""

    variable: int
    negated: bool = False

    def __post_init__(self) -> None:
        if self.variable < 0:
            raise ValidationError(f"variable index must be >= 0, got {self.variable}")

    def evaluate(self, assignment: list[bool]) -> bool:
        value = assignment[self.variable]
        return not value if self.negated else value

    def __str__(self) -> str:
        return f"¬x{self.variable}" if self.negated else f"x{self.variable}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of 1–3 literals."""

    literals: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.literals) <= 3:
            raise ValidationError(
                f"a 3CNF clause holds 1-3 literals, got {len(self.literals)}"
            )

    def evaluate(self, assignment: list[bool]) -> bool:
        return any(literal.evaluate(assignment) for literal in self.literals)

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(literal) for literal in self.literals) + ")"


@dataclass(frozen=True)
class Formula3CNF:
    """A conjunction of 3CNF clauses over ``n_vars`` variables."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.n_vars < 1:
            raise ValidationError(f"n_vars must be >= 1, got {self.n_vars}")
        if not self.clauses:
            raise ValidationError("a formula needs at least one clause")
        for clause in self.clauses:
            for literal in clause.literals:
                if literal.variable >= self.n_vars:
                    raise ValidationError(
                        f"literal {literal} exceeds n_vars={self.n_vars}"
                    )

    def evaluate(self, assignment: list[bool]) -> bool:
        if len(assignment) != self.n_vars:
            raise ValidationError(
                f"assignment must have length {self.n_vars}, got {len(assignment)}"
            )
        return all(clause.evaluate(assignment) for clause in self.clauses)

    def __str__(self) -> str:
        return " ∧ ".join(str(clause) for clause in self.clauses)


def random_3cnf(n_vars: int, n_clauses: int, random_state=None) -> Formula3CNF:
    """A uniformly random 3CNF formula (3 distinct variables per clause
    when possible)."""
    if n_clauses < 1:
        raise ValidationError(f"n_clauses must be >= 1, got {n_clauses}")
    rng = check_random_state(random_state)
    clauses = []
    for _ in range(n_clauses):
        width = min(3, n_vars)
        variables = rng.choice(n_vars, size=width, replace=False)
        literals = tuple(
            Literal(int(variable), negated=bool(rng.integers(2)))
            for variable in variables
        )
        clauses.append(Clause(literals=literals))
    return Formula3CNF(n_vars=n_vars, clauses=tuple(clauses))


def brute_force_3sat(formula: Formula3CNF) -> list[bool] | None:
    """Exhaustive satisfiability check — ground truth for small formulas."""
    for bits in itertools.product([False, True], repeat=formula.n_vars):
        assignment = list(bits)
        if formula.evaluate(assignment):
            return assignment
    return None
