"""The uniform Attack protocol, report and registry.

Each of the five attack modules under :mod:`repro.attacks` grew its own
function signature and result dataclass; this module wraps them all in
one protocol so scenario harnesses, the CLI and downstream tooling can
treat "an attack" as a value:

- :class:`AttackTarget` — the deployed watermarked model plus the data
  the attacker (and the evaluation) can see;
- :class:`Attack` — the protocol: a ``name`` and
  ``run(target, rng) -> AttackReport``;
- :class:`AttackReport` — the uniform outcome: accuracy before/after,
  watermark-survival verdict, cost/budget accounting and a
  JSON-serialisable ``to_dict()``;
- a **registry** (:func:`register_attack`, :func:`make_attack`,
  :func:`available_attacks`) so attacks are addressable by name from
  :func:`repro.experiments.run_scenario_matrix` and ``repro attack``.

Model-editing attacks (truncate / flip / prune) additionally expose
``edit(forest, rng) -> forest``, which is what makes
:class:`ChainedAttack` — truncate, then flip, then prune, evaluated
once at the end — expressible at all: the legacy per-module functions
each re-verified their own result and could not compose.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, is_dataclass
from functools import cached_property
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from .._jsonsafe import json_safe
from .._validation import check_random_state, check_X_y
from ..attacks.detection import detection_report
from ..attacks.extraction import extract_surrogate
from ..attacks.forgery import forge_trigger_set, forgery_distortion
from ..attacks.modification import flip_forest_leaves, truncate_forest
from ..core.embedding import WatermarkedModel
from ..core.signature import random_signature
from ..core.verification import VerificationReport, verify_ownership
from ..attacks.suppression import suppression_analysis
from ..exceptions import ValidationError
from ..trees.pruning import prune_cost_complexity

__all__ = [
    "Attack",
    "AttackReport",
    "AttackTarget",
    "ChainedAttack",
    "DetectionAttack",
    "ExtractionAttack",
    "ForgeryAttack",
    "LeafFlipAttack",
    "ModelEditAttack",
    "PruneAttack",
    "SuppressionAttack",
    "TruncateAttack",
    "attack_params",
    "available_attacks",
    "make_attack",
    "register_attack",
]


def _json_safe(value):
    """Recursively convert a result value into *strictly* JSON-safe types.

    Delegates to :func:`repro._jsonsafe.json_safe`, which also clamps
    non-finite floats to ``None`` so ``--json`` output never contains
    the invalid ``Infinity``/``NaN`` literals.
    """
    return json_safe(value)


@dataclass(frozen=True)
class AttackTarget:
    """The deployed watermarked model plus the attacker-visible data.

    ``X_train``/``y_train`` stand in for whatever data pool the
    attacker can draw on (extraction queries, suppression background);
    ``X_test``/``y_test`` score accuracy and anchor forged instances.
    """

    model: WatermarkedModel
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray

    @classmethod
    def from_split(cls, model: WatermarkedModel, split) -> "AttackTarget":
        """Build from a ``(X_train, X_test, y_train, y_test)`` split."""
        X_train, X_test, y_train, y_test = split
        X_train, y_train = check_X_y(X_train, y_train)
        X_test, y_test = check_X_y(X_test, y_test)
        return cls(
            model=model,
            X_train=X_train,
            y_train=y_train,
            X_test=X_test,
            y_test=y_test,
        )

    @cached_property
    def baseline_accuracy(self) -> float:
        """Test accuracy of the unattacked model (compiled once, cached)."""
        self.model.ensemble.compile()
        return float(self.model.ensemble.score(self.X_test, self.y_test))

    def verify(self, suspect_model, mode: str = "strict") -> VerificationReport:
        """Verify the owner's watermark against any per-tree model."""
        return verify_ownership(
            suspect_model,
            self.model.signature,
            self.model.trigger.X,
            self.model.trigger.y,
            mode=mode,
        )


@dataclass(frozen=True)
class AttackReport:
    """Uniform outcome of one attack run.

    The same fields mean the same thing for every attack:
    ``attacked_accuracy`` is what the attacker would deploy (equal to
    ``baseline_accuracy`` for attacks that leave the model untouched,
    e.g. forgery); ``watermark_accepted``/``watermark_match_rate`` is
    the owner's strict verification against the attacked artefact;
    ``succeeded`` is the attack's own win condition; ``cost`` accounts
    budgets (time, queries, solver conflicts); attack-specific numbers
    live under ``details``.
    """

    attack: str
    params: dict
    baseline_accuracy: float
    attacked_accuracy: float
    watermark_accepted: bool
    watermark_match_rate: float
    succeeded: bool
    cost: dict = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    @property
    def accuracy_delta(self) -> float:
        """Attacked minus baseline accuracy (negative = the attack cost accuracy)."""
        return self.attacked_accuracy - self.baseline_accuracy

    def to_dict(self) -> dict:
        """JSON-serialisable view (numpy scalars/arrays converted)."""
        return _json_safe(
            {
                "attack": self.attack,
                "params": self.params,
                "baseline_accuracy": self.baseline_accuracy,
                "attacked_accuracy": self.attacked_accuracy,
                "accuracy_delta": self.accuracy_delta,
                "watermark_accepted": self.watermark_accepted,
                "watermark_match_rate": self.watermark_match_rate,
                "succeeded": self.succeeded,
                "cost": self.cost,
                "details": self.details,
            }
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "SUCCEEDED" if self.succeeded else "FAILED"
        survival = "accepted" if self.watermark_accepted else "rejected"
        return (
            f"{self.attack}: attack {verdict}; watermark {survival} "
            f"({self.watermark_match_rate:.2f} match), accuracy "
            f"{self.baseline_accuracy:.3f} -> {self.attacked_accuracy:.3f}"
        )


@runtime_checkable
class Attack(Protocol):
    """What every attack exposes: a name and one uniform entry point."""

    name: str

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        """Attack ``target`` and report the uniform outcome."""
        ...


def attack_params(attack) -> dict:
    """The attack's configuration as a plain dict (for reports/JSON)."""
    if not is_dataclass(attack):
        return {}
    params = {}
    for spec in fields(attack):
        value = getattr(attack, spec.name)
        if spec.name == "stages":
            value = [{"name": stage.name, **attack_params(stage)} for stage in value]
        params[spec.name] = value
    return params


# -- registry -----------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_attack(cls):
    """Class decorator adding an attack to the global registry by ``name``."""
    name = cls.name
    if name in _REGISTRY:
        raise ValidationError(f"attack {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_attacks() -> tuple[str, ...]:
    """Registered attack names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_attack(name: str, **params) -> Attack:
    """Instantiate a registered attack by name with config overrides."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown attack {name!r}; available: {', '.join(available_attacks())}"
        ) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValidationError(f"bad parameters for attack {name!r}: {exc}") from exc


# -- model-editing attacks ---------------------------------------------


class ModelEditAttack:
    """Base for attacks that edit the stolen forest and redeploy it.

    Subclasses implement ``edit(forest, rng) -> forest`` (a *copy*, the
    input forest is never mutated); ``run`` evaluates the edited model
    once: accuracy on the test set and strict verification of the
    owner's watermark.  Because editing and evaluation are separate,
    edits compose — see :class:`ChainedAttack`.
    """

    name: ClassVar[str]

    def edit(self, forest, rng: np.random.Generator):
        raise NotImplementedError

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        started = time.perf_counter()
        attacked = self.edit(target.model.ensemble, rng)
        # One compiled table serves both the trigger verification and
        # the test-set scoring; the attacked forest is fresh, so the
        # lazy path would otherwise skip compiling for the small
        # trigger batch.
        attacked.compile()
        verification = target.verify(attacked)
        attacked_accuracy = float(attacked.score(target.X_test, target.y_test))
        return AttackReport(
            attack=self.name,
            params=attack_params(self),
            baseline_accuracy=target.baseline_accuracy,
            attacked_accuracy=attacked_accuracy,
            watermark_accepted=verification.accepted,
            watermark_match_rate=verification.n_matching / verification.n_trees,
            succeeded=not verification.accepted,
            cost={"elapsed_seconds": time.perf_counter() - started},
            details={
                "n_matching_trees": verification.n_matching,
                "n_trees": verification.n_trees,
            },
        )


@register_attack
@dataclass(frozen=True)
class TruncateAttack(ModelEditAttack):
    """Cut every tree at ``depth``, replacing subtrees by majority leaves."""

    name: ClassVar[str] = "truncate"
    strength_param: ClassVar[str] = "depth"

    depth: int = 4

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValidationError(f"depth must be >= 0, got {self.depth}")

    def edit(self, forest, rng: np.random.Generator):
        return truncate_forest(forest, int(self.depth))


@register_attack
@dataclass(frozen=True)
class LeafFlipAttack(ModelEditAttack):
    """Flip each leaf's ±1 label independently with ``probability``."""

    name: ClassVar[str] = "flip"
    strength_param: ClassVar[str] = "probability"

    probability: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def edit(self, forest, rng: np.random.Generator):
        return flip_forest_leaves(forest, float(self.probability), rng)


@register_attack
@dataclass(frozen=True)
class PruneAttack(ModelEditAttack):
    """Cost-complexity-prune every tree at complexity ``alpha``."""

    name: ClassVar[str] = "prune"
    strength_param: ClassVar[str] = "alpha"

    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ValidationError(f"alpha must be >= 0, got {self.alpha}")

    def edit(self, forest, rng: np.random.Generator):
        return forest.with_roots(
            [prune_cost_complexity(root, float(self.alpha)) for root in forest.roots()]
        )


@register_attack
@dataclass(frozen=True)
class ChainedAttack(ModelEditAttack):
    """Compose model edits in sequence, evaluated once at the end.

    The default chain is the strongest cheap attacker the legacy
    single-shot functions could not express: truncate the trees, add
    behavioural noise, then prune — the watermark must survive the
    *combination*, not each step in isolation.
    """

    name: ClassVar[str] = "chain"
    strength_param: ClassVar[str | None] = None

    stages: tuple = (
        TruncateAttack(depth=6),
        LeafFlipAttack(probability=0.05),
        PruneAttack(alpha=0.5),
    )

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValidationError("a chained attack needs at least one stage")
        for stage in self.stages:
            if not isinstance(stage, ModelEditAttack):
                raise ValidationError(
                    f"chain stages must be model-editing attacks, got "
                    f"{type(stage).__name__} — only edits compose"
                )
        object.__setattr__(self, "stages", tuple(self.stages))

    def edit(self, forest, rng: np.random.Generator):
        for stage in self.stages:
            forest = stage.edit(forest, rng)
        return forest


# -- attacks that never touch the model --------------------------------


@register_attack
@dataclass(frozen=True)
class ExtractionAttack:
    """Distil the stolen model into a surrogate via black-box queries."""

    name: ClassVar[str] = "extract"
    strength_param: ClassVar[str] = "query_budget"

    query_budget: int = 100
    surrogate_max_depth: int | None = 12

    def __post_init__(self) -> None:
        if self.query_budget < 1:
            raise ValidationError(
                f"query_budget must be >= 1, got {self.query_budget}"
            )

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        started = time.perf_counter()
        rng = check_random_state(rng)
        pool = target.X_train
        budget = int(self.query_budget)
        if budget > pool.shape[0]:
            raise ValidationError(
                f"query budget {budget} exceeds the attacker pool "
                f"({pool.shape[0]} instances)"
            )
        victim = target.model.ensemble
        baseline = target.baseline_accuracy  # also compiles the victim
        chosen = rng.choice(pool.shape[0], size=budget, replace=False)
        surrogate = extract_surrogate(
            victim,
            pool[chosen],
            max_depth=self.surrogate_max_depth,
            random_state=int(rng.integers(2**31 - 1)),
        )
        agreement = float(
            np.mean(surrogate.predict(target.X_test) == victim.predict(target.X_test))
        )
        verification = target.verify(surrogate)
        attacked_accuracy = float(surrogate.score(target.X_test, target.y_test))
        return AttackReport(
            attack=self.name,
            params=attack_params(self),
            baseline_accuracy=baseline,
            attacked_accuracy=attacked_accuracy,
            watermark_accepted=verification.accepted,
            watermark_match_rate=verification.n_matching / verification.n_trees,
            succeeded=not verification.accepted,
            cost={
                "elapsed_seconds": time.perf_counter() - started,
                "queries": budget,
            },
            details={"agreement": agreement},
        )


@register_attack
@dataclass(frozen=True)
class ForgeryAttack:
    """Forge a trigger set realising a fake signature on the stolen model.

    The model itself is served unmodified (so the owner's watermark
    trivially still verifies); the attack succeeds if the solver forges
    at least as many instances as the original trigger set holds —
    enough to press a counterfeit ownership claim of equal weight.
    """

    name: ClassVar[str] = "forgery"
    strength_param: ClassVar[str] = "epsilon"

    epsilon: float = 0.3
    engine: str = "smt"
    max_instances: int | None = None
    solver_budget: int | None = 50_000
    n_jobs: int | None = None

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        started = time.perf_counter()
        rng = check_random_state(rng)
        model = target.model
        fake = random_signature(
            model.ensemble.n_trees_, ones_fraction=0.5, random_state=rng
        )
        result = forge_trigger_set(
            model.ensemble,
            fake,
            target.X_test,
            target.y_test,
            epsilon=self.epsilon,
            engine=self.engine,
            target_size=model.trigger.size,
            max_instances=self.max_instances,
            solver_budget=self.solver_budget,
            n_jobs=self.n_jobs,
            random_state=rng,
        )
        verification = target.verify(model.ensemble)
        return AttackReport(
            attack=self.name,
            params=attack_params(self),
            baseline_accuracy=target.baseline_accuracy,
            attacked_accuracy=target.baseline_accuracy,
            watermark_accepted=verification.accepted,
            watermark_match_rate=verification.n_matching / verification.n_trees,
            succeeded=result.n_forged >= model.trigger.size,
            cost={
                "elapsed_seconds": time.perf_counter() - started,
                "solver_seconds": result.elapsed_seconds,
                "solver_budget": self.solver_budget,
                "n_attempted": result.n_attempted,
            },
            details={
                "n_forged": result.n_forged,
                "original_trigger_size": model.trigger.size,
                "statuses": dict(result.statuses),
                "fake_signature": fake.to_string(),
                "distortion": forgery_distortion(result, target.X_test),
            },
        )


@register_attack
@dataclass(frozen=True)
class SuppressionAttack:
    """Try to tell trigger queries apart from ordinary test queries.

    Succeeds when the *input-side* distinguisher — the only one an
    attacker can apply before answering a query — separates triggers
    with AUC at or above ``auc_threshold``.  The model-behaviour
    (vote-disagreement) AUC is reported alongside in ``details``.
    """

    name: ClassVar[str] = "suppression"
    strength_param: ClassVar[str | None] = None

    auc_threshold: float = 0.9

    def __post_init__(self) -> None:
        if not 0.5 <= self.auc_threshold <= 1.0:
            raise ValidationError(
                f"auc_threshold must be in [0.5, 1], got {self.auc_threshold}"
            )

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        started = time.perf_counter()
        model = target.model
        analysis = suppression_analysis(
            model.ensemble,
            model.trigger.X,
            target.X_test,
            X_background=target.X_train,
        )
        verification = target.verify(model.ensemble)
        return AttackReport(
            attack=self.name,
            params=attack_params(self),
            baseline_accuracy=target.baseline_accuracy,
            attacked_accuracy=target.baseline_accuracy,
            watermark_accepted=verification.accepted,
            watermark_match_rate=verification.n_matching / verification.n_trees,
            succeeded=analysis.input_auc >= self.auc_threshold,
            cost={"elapsed_seconds": time.perf_counter() - started},
            details={
                "input_auc": analysis.input_auc,
                "disagreement_auc": analysis.disagreement_auc,
            },
        )


@register_attack
@dataclass(frozen=True)
class DetectionAttack:
    """Recover signature bits from per-tree structure (Table 2).

    Runs both strategies on both structural statistics; succeeds when
    any strategy decides at least one bit and recovers decided bits at
    or above ``recovery_threshold`` (0.5 = coin flip, the level the
    ``Adjust`` heuristic defends down to).
    """

    name: ClassVar[str] = "detection"
    strength_param: ClassVar[str | None] = None

    recovery_threshold: float = 0.75

    def __post_init__(self) -> None:
        if not 0.5 <= self.recovery_threshold <= 1.0:
            raise ValidationError(
                f"recovery_threshold must be in [0.5, 1], got "
                f"{self.recovery_threshold}"
            )

    def run(self, target: AttackTarget, rng: np.random.Generator) -> AttackReport:
        started = time.perf_counter()
        results = detection_report(target.model)
        attempts = [
            {
                "statistic": result.statistic,
                "strategy": result.strategy,
                "mean": result.mean,
                "std": result.std,
                "n_correct": result.n_correct,
                "n_wrong": result.n_wrong,
                "n_uncertain": result.n_uncertain,
                "recovery_rate": result.recovery_rate,
            }
            for result in results
        ]
        decided = [
            attempt for attempt in attempts
            if attempt["n_correct"] + attempt["n_wrong"] > 0
        ]
        best_recovery = max(
            (attempt["recovery_rate"] for attempt in decided), default=0.0
        )
        verification = target.verify(target.model.ensemble)
        return AttackReport(
            attack=self.name,
            params=attack_params(self),
            baseline_accuracy=target.baseline_accuracy,
            attacked_accuracy=target.baseline_accuracy,
            watermark_accepted=verification.accepted,
            watermark_match_rate=verification.n_matching / verification.n_trees,
            succeeded=best_recovery >= self.recovery_threshold,
            cost={"elapsed_seconds": time.perf_counter() - started},
            details={"best_recovery_rate": best_recovery, "attempts": attempts},
        )
