"""The composable watermarking pipeline — the owner-side public API.

The paper's Algorithm 1 takes a dozen knobs; the legacy
:func:`repro.core.embedding.watermark` exposed all of them as one flat
keyword pile.  This module splits them into three small frozen configs,
each owning one concern, composed by a :class:`Watermarker` with an
sklearn-style ``fit``:

- :class:`TriggerPolicy` — how large the trigger set ``D_trigger`` is
  (absolute ``size`` or a ``fraction`` of the training set);
- :class:`EmbeddingSchedule` — the ``TrainWithTrigger`` re-weighting
  loop (increment, escalation, round cap, incremental refits);
- :class:`TrainerConfig` — everything about the underlying forests
  (hyper-parameters or the grid to search them from, the ``Adjust``
  anti-detection heuristic, feature subspaces, worker processes).

::

    from repro.api import EmbeddingSchedule, TrainerConfig, TriggerPolicy, Watermarker

    wm = Watermarker(
        signature=random_signature(m=32, random_state=7),
        trigger=TriggerPolicy(fraction=0.02),
        schedule=EmbeddingSchedule(escalation_factor=2.0),
        trainer=TrainerConfig(base_params={"max_depth": 8}, n_jobs=-1),
        random_state=7,
    )
    model = wm.fit(X_train, y_train)      # -> WatermarkedModel

    model.save("model.rfbin")             # mmap-able binary artefact
    model.save("model.json")              # inspectable escape hatch
    again = WatermarkedModel.load("model.rfbin", mmap_mode="r")

The returned model persists through the pluggable exporter family
(:mod:`repro.persistence.exporters`): ``save(path, format=...)`` picks
the format by name or extension, and ``load(..., mmap_mode="r")`` maps
the binary format zero-copy for serving.

The legacy ``watermark(...)`` entry point is now a thin shim over this
class; for equal inputs both produce **bitwise-identical** models
(serialised trees and ``predict_all`` outputs — regression-tested in
``tests/api/test_pipeline.py``), because this module *is* the one
implementation of Algorithm 1's orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_binary_labels, check_random_state, check_X_y
from ..core.adjustment import AdjustedHyperParameters, adjust_hyperparameters
from ..core.embedding import EmbeddingReport, WatermarkedModel, train_with_trigger
from ..core.signature import Signature
from ..core.trigger import sample_trigger_set
from ..ensemble.forest import RandomForestClassifier
from ..exceptions import ValidationError
from ..model_selection.grid_search import grid_search_forest

__all__ = [
    "TriggerPolicy",
    "EmbeddingSchedule",
    "TrainerConfig",
    "Watermarker",
]


@dataclass(frozen=True)
class TriggerPolicy:
    """How to size the trigger set ``D_trigger``.

    Exactly one of ``size`` (absolute ``k``) and ``fraction`` (of the
    training set, the way the experiment configs express it) must be
    set.  Either way the scheme's ``k ≪ |D_train|`` assumption is
    enforced at ``fit`` time.
    """

    size: int | None = None
    fraction: float | None = None

    def __post_init__(self) -> None:
        if (self.size is None) == (self.fraction is None):
            raise ValidationError(
                "exactly one of TriggerPolicy.size and TriggerPolicy.fraction "
                "must be set"
            )
        if self.size is not None and self.size < 1:
            raise ValidationError(f"trigger size must be >= 1, got {self.size}")
        if self.fraction is not None and not 0.0 < self.fraction <= 0.5:
            raise ValidationError(
                f"trigger fraction must be in (0, 0.5], got {self.fraction}"
            )

    def resolve(self, n_train: int) -> int:
        """The trigger-set size ``k`` for a training set of ``n_train`` rows."""
        if self.size is not None:
            k = int(self.size)
        else:
            k = max(1, int(round(self.fraction * n_train)))
        if k > n_train // 2:
            raise ValidationError(
                f"trigger size {k} is not small relative to the training set "
                f"({n_train} samples); the scheme assumes k ≪ |D_train|"
            )
        return k


@dataclass(frozen=True)
class EmbeddingSchedule:
    """The ``TrainWithTrigger`` re-weighting schedule.

    Defaults are the paper's: ``+1`` additive weight increments, no
    escalation, and the incremental engine (only still-misfitting trees
    refit each round; ``incremental=False`` restores the literal
    full-retrain loop).
    """

    weight_increment: float = 1.0
    escalation_factor: float = 1.0
    max_rounds: int = 60
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.weight_increment <= 0:
            raise ValidationError(
                f"weight_increment must be > 0, got {self.weight_increment}"
            )
        if self.escalation_factor < 1.0:
            raise ValidationError(
                f"escalation_factor must be >= 1, got {self.escalation_factor}"
            )
        if self.max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {self.max_rounds}")


@dataclass(frozen=True)
class TrainerConfig:
    """Everything about the forests underneath the watermark.

    ``base_params=None`` runs the paper's grid search (line 12 of
    Algorithm 1) over ``param_grid``; a dict skips the search.
    ``adjust`` applies the ``Adjust`` anti-detection heuristic on top of
    whichever hyper-parameters result.  ``n_jobs`` fans tree fitting
    over worker processes wherever the pipeline trains a forest;
    results never depend on it.
    """

    base_params: dict | None = None
    param_grid: dict | None = None
    adjust: bool = True
    tree_feature_fraction: float = 0.7
    n_jobs: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.tree_feature_fraction <= 1.0:
            raise ValidationError(
                f"tree_feature_fraction must be in (0, 1], got "
                f"{self.tree_feature_fraction}"
            )


def _forest_params(base_params: dict, adjusted: AdjustedHyperParameters | None) -> dict:
    """Merge grid-searched params with the Adjust caps (caps win)."""
    params = dict(base_params)
    if adjusted is not None:
        params["max_depth"] = adjusted.max_depth
        params["max_leaf_nodes"] = adjusted.max_leaf_nodes
    return params


def _assemble(
    signature: Signature,
    forest_zero: RandomForestClassifier | None,
    forest_one: RandomForestClassifier | None,
    n_features: int,
    classes: np.ndarray,
    template: RandomForestClassifier,
) -> RandomForestClassifier:
    """Interleave trees of ``T0``/``T1`` by signature bit (lines 19–22)."""
    trees = []
    subsets = []
    it_zero = iter(zip(forest_zero.trees_, forest_zero.feature_subsets_)) if forest_zero else iter(())
    it_one = iter(zip(forest_one.trees_, forest_one.feature_subsets_)) if forest_one else iter(())
    for bit in signature:
        tree, subset = next(it_one) if bit == 1 else next(it_zero)
        trees.append(tree)
        subsets.append(subset)

    assembled = template.clone_with(n_estimators=len(signature))
    assembled.trees_ = trees
    assembled.feature_subsets_ = subsets
    assembled.classes_ = classes
    assembled.n_features_in_ = n_features
    return assembled


@dataclass(frozen=True)
class Watermarker:
    """Algorithm 1 as a composable, reusable pipeline object.

    ``fit(X, y)`` runs grid search (if configured), trigger sampling,
    the ``Adjust`` heuristic, the two trigger-constrained trainings
    ``T0``/``T1`` and the signature interleaving, returning a
    :class:`~repro.core.embedding.WatermarkedModel`.

    The object itself is an immutable config bundle: calling ``fit``
    twice with the same data and an *int* ``random_state`` produces
    identical models.  ``None`` draws fresh entropy per call, and a
    generator instance is consumed across calls — like everywhere else
    in the library.
    """

    signature: Signature
    trigger: TriggerPolicy
    schedule: EmbeddingSchedule = field(default_factory=EmbeddingSchedule)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    random_state: object = None

    def fit(self, X, y) -> WatermarkedModel:
        """Embed the signature into a freshly trained ensemble.

        Parameters
        ----------
        X, y:
            Training set with binary ±1 labels.

        Returns
        -------
        WatermarkedModel
            The watermarked ensemble together with the secret
            ``(signature, trigger set)`` and embedding diagnostics.

        Notes
        -----
        The pseudo-code calls ``Adjust`` inside ``TrainWithTrigger``;
        since the heuristic is a pure function of ``(D_train, H)`` we
        hoist it out and compute it once for both ensembles — same
        result, half the probe trainings.
        """
        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        rng = check_random_state(self.random_state)
        signature = self.signature
        trainer = self.trainer
        schedule = self.schedule

        trigger_size = self.trigger.resolve(X.shape[0])

        # Line 12: grid search for H.
        base_params = trainer.base_params
        if base_params is None:
            search = grid_search_forest(
                X,
                y,
                n_estimators=len(signature),
                param_grid=trainer.param_grid,
                tree_feature_fraction=trainer.tree_feature_fraction,
                n_jobs=trainer.n_jobs,
                random_state=rng,
            )
            base_params = search.best_params

        # Line 13: sample the trigger set.
        trigger = sample_trigger_set(X, y, trigger_size, random_state=rng)

        # Adjust(H): hide the watermark structurally.
        adjusted = None
        if trainer.adjust:
            adjusted = adjust_hyperparameters(
                X,
                y,
                n_estimators=len(signature),
                base_params=base_params,
                tree_feature_fraction=trainer.tree_feature_fraction,
                n_jobs=trainer.n_jobs,
                random_state=rng,
            )
        params = _forest_params(base_params, adjusted)

        # Lines 14-15: T0 — trees classify the trigger set correctly.
        n_zero = signature.n_zeros
        forest_zero, rounds_t0, weight_t0 = (None, 0, 1.0)
        if n_zero > 0:
            forest_zero, rounds_t0, weight_t0 = train_with_trigger(
                X,
                y,
                trigger.indices,
                n_estimators=n_zero,
                params=params,
                tree_feature_fraction=trainer.tree_feature_fraction,
                weight_increment=schedule.weight_increment,
                escalation_factor=schedule.escalation_factor,
                max_rounds=schedule.max_rounds,
                incremental=schedule.incremental,
                n_jobs=trainer.n_jobs,
                random_state=rng,
            )

        # Lines 16-18: flip trigger labels and train T1 to misclassify.
        n_one = signature.n_ones
        forest_one, rounds_t1, weight_t1 = (None, 0, 1.0)
        if n_one > 0:
            y_flipped = y.copy()
            y_flipped[trigger.indices] = trigger.flipped_y
            forest_one, rounds_t1, weight_t1 = train_with_trigger(
                X,
                y_flipped,
                trigger.indices,
                n_estimators=n_one,
                params=params,
                tree_feature_fraction=trainer.tree_feature_fraction,
                weight_increment=schedule.weight_increment,
                escalation_factor=schedule.escalation_factor,
                max_rounds=schedule.max_rounds,
                incremental=schedule.incremental,
                n_jobs=trainer.n_jobs,
                random_state=rng,
            )

        # Lines 19-23: interleave trees by signature bit.
        template = RandomForestClassifier(
            tree_feature_fraction=trainer.tree_feature_fraction,
            n_jobs=trainer.n_jobs,
            **params,
        )
        ensemble = _assemble(
            signature,
            forest_zero,
            forest_one,
            n_features=X.shape[1],
            classes=np.unique(y),
            template=template,
        )
        report = EmbeddingReport(
            rounds_t0=rounds_t0,
            rounds_t1=rounds_t1,
            trigger_weight_t0=weight_t0,
            trigger_weight_t1=weight_t1,
            adjusted=adjusted,
            base_params=dict(base_params),
        )
        return WatermarkedModel(
            ensemble=ensemble, signature=signature, trigger=trigger, report=report
        )
