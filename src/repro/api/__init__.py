"""repro.api — the coherent public surface of the library.

Three layers, one import::

    from repro import api

1. **Pipeline** (:mod:`repro.api.pipeline`) — compose a watermarking
   run from small frozen configs and fit it sklearn-style::

       model = api.Watermarker(
           signature=sigma,
           trigger=api.TriggerPolicy(fraction=0.02),
           schedule=api.EmbeddingSchedule(escalation_factor=2.0),
           trainer=api.TrainerConfig(base_params={"max_depth": 8}),
           random_state=7,
       ).fit(X_train, y_train)

2. **Attacks** (:mod:`repro.api.attacks`) — every attack behind one
   protocol (``name`` + ``run(target, rng) -> AttackReport``) and a
   registry::

       target = api.AttackTarget.from_split(model, split)
       report = api.make_attack("flip", probability=0.1).run(target, rng)
       report.to_dict()      # uniform JSON for every attack

3. **Scenarios** (:mod:`repro.experiments.scenarios`) — sweep attacks
   × strengths × datasets through one runner::

       cells = api.run_scenario_matrix(config, attacks=("truncate", "flip"),
                                       strengths={"flip": (0.05, 0.3)})

The legacy ``repro.watermark`` entry point is a thin shim over the
pipeline layer; the per-module attack functions remain the underlying
implementations that the protocol classes here wrap.
"""

from .attacks import (
    Attack,
    AttackReport,
    AttackTarget,
    ChainedAttack,
    DetectionAttack,
    ExtractionAttack,
    ForgeryAttack,
    LeafFlipAttack,
    ModelEditAttack,
    PruneAttack,
    SuppressionAttack,
    TruncateAttack,
    attack_params,
    available_attacks,
    make_attack,
    register_attack,
)
from .pipeline import EmbeddingSchedule, TrainerConfig, TriggerPolicy, Watermarker

__all__ = [
    "Attack",
    "AttackReport",
    "AttackTarget",
    "ChainedAttack",
    "DetectionAttack",
    "EmbeddingSchedule",
    "ExtractionAttack",
    "ForgeryAttack",
    "LeafFlipAttack",
    "ModelEditAttack",
    "PruneAttack",
    "ScenarioCell",
    "SuppressionAttack",
    "TrainerConfig",
    "TriggerPolicy",
    "TruncateAttack",
    "Watermarker",
    "attack_params",
    "available_attacks",
    "build_attack_target",
    "make_attack",
    "register_attack",
    "run_scenario_matrix",
]

#: Scenario-layer names re-exported lazily: ``experiments.scenarios``
#: imports this package for the attack registry, so a module-level
#: import here would be circular.
_SCENARIO_EXPORTS = ("ScenarioCell", "build_attack_target", "run_scenario_matrix")


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from ..experiments import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
