"""Composable query-stream generators: the red team.

Each generator models one adversarial (or benign) traffic source the
paper's deployment scenario must withstand:

- :class:`LegitTrafficGenerator` — ordinary users resampling the
  attacker-visible data split (optionally jittered off the rows);
- :class:`TriggerProbeGenerator` — a judge (or a thief hunting the
  trigger set) probing at or near the watermark triggers;
- :class:`SuppressionEvasionGenerator` — a model thief *serving* the
  stolen model but answering suspected trigger queries with perturbed
  per-tree labels (the suppression counter-attack the paper argues is
  impossible input-side; here the thief flags by vote disagreement);
- :class:`ExtractionHarvestGenerator` — a surrogate trainer harvesting
  labels over the feature box (uniform synthesis, optionally anchored
  at visible data);
- :class:`MixedStream` — any of the above mixed at configurable rates
  with independent sub-streams per component.

All generators follow the block-indexed seeding contract of
:mod:`repro.traffic.base`: same seed ⇒ byte-identical stream,
independent of consumer chunking, replayable via ``reset``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_X
from ..ensemble.voting import vote_margin
from ..exceptions import ValidationError
from .base import BaseGenerator, QueryBatch, as_seed_sequence, child_seed

__all__ = [
    "ExtractionHarvestGenerator",
    "LegitTrafficGenerator",
    "MixedStream",
    "SuppressionEvasionGenerator",
    "TriggerProbeGenerator",
]


def _plain_batch(name: str, X: np.ndarray, is_trigger: np.ndarray) -> QueryBatch:
    return QueryBatch(
        X=X,
        is_trigger=is_trigger,
        source=np.zeros(X.shape[0], dtype=np.int64),
        sources=(name,),
    )


def _jittered(rows: np.ndarray, jitter: float, rng: np.random.Generator) -> np.ndarray:
    if jitter <= 0.0:
        return rows.copy()
    noisy = rows + rng.normal(0.0, jitter, size=rows.shape)
    return np.clip(noisy, 0.0, 1.0)


class LegitTrafficGenerator(BaseGenerator):
    """Benign traffic: i.i.d. resampling of a reference pool.

    ``X_pool`` is whatever slice of the input distribution the scenario
    grants (typically the attacker-visible training split, matching
    ``AttackTarget.X_train``).  ``jitter > 0`` adds clipped Gaussian
    noise so queries are near, not on, the pool rows.
    """

    name = "legit"

    def __init__(self, X_pool, seed=None, jitter: float = 0.0, block_size: int = 1024) -> None:
        super().__init__(seed=seed, block_size=block_size)
        self.X_pool = check_X(X_pool, name="X_pool")
        if jitter < 0.0:
            raise ValidationError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        rows = rng.integers(0, self.X_pool.shape[0], size=size)
        X = _jittered(self.X_pool[rows], self.jitter, rng)
        return _plain_batch(self.name, X, np.zeros(size, dtype=bool))


class TriggerProbeGenerator(BaseGenerator):
    """Trigger probing: queries at (``jitter=0``) or near the triggers.

    Models the judge's verification queries — or a thief probing the
    trigger neighbourhood — as a stream.  Every emitted query is marked
    ``is_trigger`` (the ground truth defenders are scored against).
    """

    name = "probe"

    def __init__(self, trigger_X, seed=None, jitter: float = 0.0, block_size: int = 1024) -> None:
        super().__init__(seed=seed, block_size=block_size)
        self.trigger_X = check_X(trigger_X, name="trigger_X")
        if jitter < 0.0:
            raise ValidationError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        rows = rng.integers(0, self.trigger_X.shape[0], size=size)
        X = _jittered(self.trigger_X[rows], self.jitter, rng)
        return _plain_batch(self.name, X, np.ones(size, dtype=bool))


class ExtractionHarvestGenerator(BaseGenerator):
    """Label harvesting for surrogate training.

    Pure synthesis (uniform over the feature box) when no pool is
    given; anchored harvesting (pool rows plus uniform spread) when the
    extractor also holds visible data — the classic query strategies of
    the model-stealing literature.
    """

    name = "harvest"

    def __init__(
        self,
        n_features: int,
        seed=None,
        low: float = 0.0,
        high: float = 1.0,
        X_pool=None,
        spread: float = 0.25,
        block_size: int = 1024,
    ) -> None:
        super().__init__(seed=seed, block_size=block_size)
        if n_features < 1:
            raise ValidationError(f"n_features must be >= 1, got {n_features}")
        if not high > low:
            raise ValidationError(f"need high > low, got [{low}, {high}]")
        self.n_features = int(n_features)
        self.low = float(low)
        self.high = float(high)
        self.X_pool = None if X_pool is None else check_X(X_pool, name="X_pool")
        if self.X_pool is not None and self.X_pool.shape[1] != self.n_features:
            raise ValidationError(
                f"X_pool has {self.X_pool.shape[1]} features, expected {n_features}"
            )
        self.spread = float(spread)

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        if self.X_pool is None:
            X = rng.uniform(self.low, self.high, size=(size, self.n_features))
        else:
            rows = rng.integers(0, self.X_pool.shape[0], size=size)
            offsets = rng.uniform(
                -self.spread, self.spread, size=(size, self.n_features)
            )
            X = np.clip(self.X_pool[rows] + offsets, self.low, self.high)
        return _plain_batch(self.name, X, np.zeros(size, dtype=bool))


class SuppressionEvasionGenerator(BaseGenerator):
    """A model thief serving suppressed/perturbed answers.

    Wraps the deployment itself: the block carries both the queries (a
    legit/probe mix at ``probe_rate``) and the per-tree labels the
    thief's server *actually answers* (``y_override``, mask all-True).
    The thief cannot identify triggers input-side (the paper's claim),
    so it flags by the model's own vote disagreement: any query whose
    disagreement score reaches ``flag_threshold`` gets each per-tree
    label independently re-randomised — destroying the signature
    pattern on exactly the queries verification needs.
    """

    name = "evasion"

    def __init__(
        self,
        model,
        X_pool,
        trigger_X,
        seed=None,
        probe_rate: float = 0.1,
        flag_threshold: float = 0.9,
        block_size: int = 1024,
    ) -> None:
        super().__init__(seed=seed, block_size=block_size)
        self.model = model
        self.X_pool = check_X(X_pool, name="X_pool")
        self.trigger_X = check_X(trigger_X, name="trigger_X")
        if not 0.0 <= probe_rate <= 1.0:
            raise ValidationError(f"probe_rate must be in [0, 1], got {probe_rate}")
        if not 0.0 < flag_threshold <= 1.0:
            raise ValidationError(
                f"flag_threshold must be in (0, 1], got {flag_threshold}"
            )
        self.probe_rate = float(probe_rate)
        self.flag_threshold = float(flag_threshold)

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        is_probe = rng.random(size) < self.probe_rate
        pool_rows = rng.integers(0, self.X_pool.shape[0], size=size)
        trigger_rows = rng.integers(0, self.trigger_X.shape[0], size=size)
        X = self.X_pool[pool_rows].copy()
        X[is_probe] = self.trigger_X[trigger_rows[is_probe]]

        honest = self.model.predict_all(X)
        disagreement = 1.0 - np.abs(2.0 * vote_margin(honest) - 1.0)
        flagged = disagreement >= self.flag_threshold
        served = honest.copy()
        if flagged.any():
            shape = (served.shape[0], int(flagged.sum()))
            served[:, flagged] = np.where(rng.random(shape) < 0.5, -1, 1)
        return QueryBatch(
            X=X,
            is_trigger=is_probe,
            source=np.zeros(size, dtype=np.int64),
            sources=(self.name,),
            y_override=served,
            override_mask=np.ones(size, dtype=bool),
        )


class MixedStream(BaseGenerator):
    """Mix component streams at configurable rates.

    Each query of a block is assigned to a component by an i.i.d. draw
    from ``rates`` (the mixture's own sub-stream); the assigned
    components then contribute their next queries *from their own
    streams*.  Because components consume private block-indexed seeds,
    changing one component's rate re-paces the others but never changes
    the sequence each emits — any component is reproducible in
    isolation from its own seed.

    When ``seed`` is given and components carry none of their own, use
    :func:`repro.traffic.base.child_seed` to derive per-component seeds
    (the scenario builders in :mod:`repro.traffic.scenarios` do this).
    """

    name = "mixed"

    def __init__(self, components, rates, seed=None, block_size: int = 1024) -> None:
        super().__init__(seed=seed, block_size=block_size)
        self.components = tuple(components)
        if not self.components:
            raise ValidationError("MixedStream needs at least one component")
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"component names must be unique, got {names}"
            )
        rates = np.asarray(list(rates), dtype=np.float64)
        if rates.shape != (len(self.components),):
            raise ValidationError(
                f"need one rate per component, got {rates.shape[0]} rates "
                f"for {len(self.components)} components"
            )
        if (rates < 0).any() or rates.sum() <= 0:
            raise ValidationError("rates must be non-negative with positive sum")
        self.rates = rates / rates.sum()
        self.sources = tuple(names)

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        labels = rng.choice(len(self.components), size=size, p=self.rates)
        n_features = None
        X = is_trigger = y_override = override_mask = None
        n_trees = None
        for index, component in enumerate(self.components):
            where = np.flatnonzero(labels == index)
            if where.size == 0:
                continue
            part = component.take(where.size)
            if X is None:
                n_features = part.X.shape[1]
                X = np.empty((size, n_features), dtype=part.X.dtype)
                is_trigger = np.zeros(size, dtype=bool)
            X[where] = part.X
            is_trigger[where] = part.is_trigger
            if part.y_override is not None:
                if y_override is None:
                    n_trees = part.y_override.shape[0]
                    y_override = np.zeros((n_trees, size), dtype=part.y_override.dtype)
                    override_mask = np.zeros(size, dtype=bool)
                y_override[:, where] = part.y_override
                override_mask[where] = part.override_mask
        return QueryBatch(
            X=X,
            is_trigger=is_trigger,
            source=labels.astype(np.int64),
            sources=self.sources,
            y_override=y_override,
            override_mask=override_mask,
        )

    def reset(self) -> None:
        super().reset()
        for component in self.components:
            component.reset()
