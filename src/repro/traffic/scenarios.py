"""Named red-team/blue-team traffic scenarios.

A scenario binds a stream composition to the standard defender pair,
parameterised only by the deployment (a
:class:`~repro.core.embedding.WatermarkedModel`), the attacker-visible
data pool, and one root seed.  Scenarios are what the ``repro
traffic`` CLI subcommand replays, what the
:func:`~repro.experiments.run_scenario_matrix` traffic axis sweeps,
and what ``benchmarks/bench_traffic.py`` measures.

Seeding: the root seed derives one child per role —
``child_seed(root, 0)`` legit, ``1`` probe, ``2`` harvest, ``3``
evasion, ``4`` the mixture — so any component stream can be
re-instantiated and replayed in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..exceptions import ValidationError
from .base import as_seed_sequence, child_seed
from .defenders import ExtractionRateMonitor, OnlineSuppressionDistinguisher
from .generators import (
    ExtractionHarvestGenerator,
    LegitTrafficGenerator,
    MixedStream,
    SuppressionEvasionGenerator,
    TriggerProbeGenerator,
)
from .replay import TrafficReport, replay

__all__ = [
    "TrafficScenario",
    "build_scenario",
    "replay_scenario",
    "scenario_description",
    "traffic_scenarios",
]

#: Mixing rate of adversarial components in the named scenarios —
#: the paper-strength setting: probing hides ~1 trigger query in 10.
ADVERSARIAL_RATE = 0.1


@dataclass(frozen=True)
class TrafficScenario:
    """A named stream/defender composition."""

    name: str
    description: str
    build_stream: Callable


def _legit(model, X_pool, root):
    return LegitTrafficGenerator(X_pool, seed=child_seed(root, 0))


def _probe(model, X_pool, root, jitter: float = 0.0):
    return TriggerProbeGenerator(
        model.trigger.X, seed=child_seed(root, 1), jitter=jitter
    )


def _harvest(model, X_pool, root):
    return ExtractionHarvestGenerator(
        X_pool.shape[1], seed=child_seed(root, 2)
    )


def _evasion(model, X_pool, root):
    return SuppressionEvasionGenerator(
        model.ensemble,
        X_pool,
        model.trigger.X,
        seed=child_seed(root, 3),
        probe_rate=ADVERSARIAL_RATE,
    )


def _mix(root, components, rates):
    return MixedStream(components, rates, seed=child_seed(root, 4))


SCENARIOS: dict[str, TrafficScenario] = {
    scenario.name: scenario
    for scenario in (
        TrafficScenario(
            "legit",
            "pure benign traffic — defenders must stay silent (false-alarm "
            "control)",
            lambda model, X_pool, root: _legit(model, X_pool, root),
        ),
        TrafficScenario(
            "verification-probe",
            "a judge's trigger queries hidden in benign traffic at rate "
            f"{ADVERSARIAL_RATE} — the stream a suppressing thief must "
            "distinguish",
            lambda model, X_pool, root: _mix(
                root,
                (_legit(model, X_pool, root), _probe(model, X_pool, root)),
                (1.0 - ADVERSARIAL_RATE, ADVERSARIAL_RATE),
            ),
        ),
        TrafficScenario(
            "suppression-evasion",
            "a thief serving the stolen model but re-randomising per-tree "
            "answers on high-disagreement queries",
            lambda model, X_pool, root: _evasion(model, X_pool, root),
        ),
        TrafficScenario(
            "extraction-harvest",
            "a surrogate trainer harvesting labels over the feature box, "
            "hidden in benign traffic",
            lambda model, X_pool, root: _mix(
                root,
                (_legit(model, X_pool, root), _harvest(model, X_pool, root)),
                (1.0 - ADVERSARIAL_RATE, ADVERSARIAL_RATE),
            ),
        ),
        TrafficScenario(
            "mixed",
            "everything at once: benign traffic, trigger probes and "
            "harvesting in one stream",
            lambda model, X_pool, root: _mix(
                root,
                (
                    _legit(model, X_pool, root),
                    _probe(model, X_pool, root),
                    _harvest(model, X_pool, root),
                ),
                (0.8, 0.1, 0.1),
            ),
        ),
    )
}


def traffic_scenarios() -> tuple[str, ...]:
    """Registered scenario names, in definition order."""
    return tuple(SCENARIOS)


def scenario_description(name: str) -> str:
    """Human-readable description of a named scenario."""
    return _get(name).description


def _get(name: str) -> TrafficScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValidationError(
            f"unknown traffic scenario {name!r}; available: "
            f"{', '.join(traffic_scenarios())}"
        ) from None


def build_scenario(
    name: str,
    model,
    X_pool,
    random_state=None,
    alpha: float = 0.05,
    min_queries: int = 256,
):
    """Instantiate a named scenario's stream and calibrated defenders.

    Returns ``(stream, defenders)``; the defenders are calibrated on
    ``X_pool`` (the benign reference the deployment operator holds).
    """
    scenario = _get(name)
    root = as_seed_sequence(random_state)
    stream = scenario.build_stream(model, X_pool, root)
    defenders = (
        OnlineSuppressionDistinguisher.calibrate(
            model.ensemble, X_pool, alpha=alpha, min_queries=min_queries
        ),
        ExtractionRateMonitor.calibrate(
            model.ensemble, X_pool, alpha=alpha, min_queries=min_queries
        ),
    )
    return stream, defenders


def replay_scenario(
    name: str,
    model,
    X_pool,
    n_queries: int = 10_000,
    batch_size: int = 1024,
    random_state=None,
    alpha: float = 0.05,
    min_queries: int = 256,
) -> TrafficReport:
    """Build and replay a named scenario end to end."""
    stream, defenders = build_scenario(
        name,
        model,
        X_pool,
        random_state=random_state,
        alpha=alpha,
        min_queries=min_queries,
    )
    return replay(
        stream,
        model.ensemble,
        defenders,
        n_queries=n_queries,
        batch_size=batch_size,
    )
