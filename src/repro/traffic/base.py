"""Streaming query traffic: batch container, stream protocol, generator base.

The paper's threat model is a *deployed* model answering millions of
black-box ``predict.all`` queries; this package simulates that traffic.
A :class:`QueryStream` produces :class:`QueryBatch` es — feature rows
plus ground-truth simulation metadata (which rows are trigger probes,
which component of a mixture emitted them, and optionally the per-tree
answers an evasive server would give instead of the honest model).

Seeding contract
----------------
Every generator owns one :class:`numpy.random.SeedSequence` and derives
an independent child per internal *block* of queries purely from
``(root entropy, spawn key, block index)``.  Consequences, all
regression-tested in ``tests/traffic/``:

- same seed ⇒ byte-identical streams, batch after batch;
- the stream does not depend on how consumers chunk it: ``take(7)``
  thirty times equals ``take(210)`` once;
- :meth:`BaseGenerator.reset` rewinds to query 0 and replays exactly;
- mixture components draw from private sub-streams, so changing one
  component's mixing rate never changes what another component emits
  (only how fast its sequence is consumed).

Blocks are an internal amortisation detail (vectorised draws instead of
per-query RNG construction); ``block_size`` is part of a generator's
identity — two generators with equal seeds but different block sizes
are different streams.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "BaseGenerator",
    "QueryBatch",
    "QueryStream",
    "as_seed_sequence",
    "child_seed",
    "concat_batches",
]


def as_seed_sequence(seed) -> np.random.SeedSequence:
    """Normalise ``seed`` to a :class:`numpy.random.SeedSequence`.

    Accepts ``None`` (fresh entropy), an int, or a ``SeedSequence``
    (returned unchanged).  Generators are deliberately *not* accepted:
    a shared mutable generator would couple sub-streams, which is
    exactly what the seeding contract forbids.
    """
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.SeedSequence(int(seed))
    raise ValidationError(
        f"seed must be None, an int or a numpy SeedSequence, got "
        f"{type(seed).__name__}"
    )


def child_seed(seed: np.random.SeedSequence, index: int) -> np.random.SeedSequence:
    """The ``index``-th child stream of ``seed``, as a pure function.

    Unlike ``SeedSequence.spawn`` this does not mutate the parent, so
    any component of a composite stream can be re-derived (and replayed
    in isolation) from the root seed and its position alone.
    """
    return np.random.SeedSequence(
        entropy=seed.entropy, spawn_key=seed.spawn_key + (int(index),)
    )


@dataclass(frozen=True)
class QueryBatch:
    """One chunk of simulated traffic.

    ``X`` are the queries; the remaining fields are simulation
    metadata.  ``is_trigger`` is the evaluation ground truth (which
    rows probe the watermark trigger set); ``source`` indexes into
    ``sources`` naming the generator that emitted each row.  An
    *evasive* server is modelled by ``y_override``/``override_mask``:
    where the mask is True, the replay harness serves the override's
    per-tree labels instead of querying the honest model.
    """

    X: np.ndarray
    is_trigger: np.ndarray
    source: np.ndarray
    sources: tuple[str, ...]
    y_override: np.ndarray | None = None
    override_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if self.is_trigger.shape != (n,) or self.source.shape != (n,):
            raise ValidationError(
                "is_trigger and source must have one entry per query"
            )
        if (self.y_override is None) != (self.override_mask is None):
            raise ValidationError(
                "y_override and override_mask must be given together"
            )
        if self.y_override is not None and (
            self.y_override.shape[1] != n or self.override_mask.shape != (n,)
        ):
            raise ValidationError(
                "y_override must be (n_trees, n_queries) with a per-query mask"
            )

    @property
    def n_queries(self) -> int:
        return int(self.X.shape[0])


def concat_batches(batches) -> QueryBatch:
    """Concatenate batches sharing one ``sources`` tuple into one batch."""
    batches = list(batches)
    if not batches:
        raise ValidationError("cannot concatenate zero batches")
    sources = batches[0].sources
    if any(b.sources != sources for b in batches):
        raise ValidationError("batches disagree on their source names")
    overrides = [b.y_override is not None for b in batches]
    y_override = override_mask = None
    if any(overrides):
        n_trees = next(
            b.y_override.shape[0] for b in batches if b.y_override is not None
        )
        y_parts, mask_parts = [], []
        for b in batches:
            if b.y_override is None:
                y_parts.append(
                    np.zeros((n_trees, b.n_queries), dtype=np.int64)
                )
                mask_parts.append(np.zeros(b.n_queries, dtype=bool))
            else:
                y_parts.append(b.y_override)
                mask_parts.append(b.override_mask)
        y_override = np.concatenate(y_parts, axis=1)
        override_mask = np.concatenate(mask_parts)
    return QueryBatch(
        X=np.concatenate([b.X for b in batches], axis=0),
        is_trigger=np.concatenate([b.is_trigger for b in batches]),
        source=np.concatenate([b.source for b in batches]),
        sources=sources,
        y_override=y_override,
        override_mask=override_mask,
    )


@runtime_checkable
class QueryStream(Protocol):
    """What every traffic source exposes.

    ``take(n)`` returns the next ``n`` queries of the (conceptually
    infinite) stream; ``batches`` chunks the stream for a replay loop;
    ``reset`` rewinds to query 0.
    """

    name: str

    def take(self, n: int) -> QueryBatch: ...

    def batches(self, n_queries: int, batch_size: int) -> Iterator[QueryBatch]: ...

    def reset(self) -> None: ...


class BaseGenerator:
    """Block-buffered generator base implementing the seeding contract.

    Subclasses implement :meth:`_generate_block`, a vectorised draw of
    ``size`` queries from a private per-block RNG.  The base class owns
    positioning: block ``b`` of the stream always uses the RNG derived
    from ``child_seed(seed, b)``, regardless of how ``take`` chunks the
    stream, so the emitted sequence is a pure function of
    ``(parameters, seed, block_size)``.
    """

    name = "base"

    def __init__(self, seed=None, block_size: int = 1024) -> None:
        if block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        self._seed = as_seed_sequence(seed)
        self._block_size = int(block_size)
        self._block_index = 0
        self._buffer: QueryBatch | None = None
        self._buffer_offset = 0

    # -- subclass hook --------------------------------------------------

    def _generate_block(self, rng: np.random.Generator, size: int) -> QueryBatch:
        raise NotImplementedError

    # -- the stream -----------------------------------------------------

    def _next_block(self) -> QueryBatch:
        rng = np.random.default_rng(child_seed(self._seed, self._block_index))
        block = self._generate_block(rng, self._block_size)
        self._block_index += 1
        return block

    def take(self, n: int) -> QueryBatch:
        """The next ``n`` queries of the stream."""
        if n < 1:
            raise ValidationError(f"take needs n >= 1, got {n}")
        parts: list[QueryBatch] = []
        remaining = int(n)
        while remaining > 0:
            if self._buffer is None or self._buffer_offset >= self._buffer.n_queries:
                self._buffer = self._next_block()
                self._buffer_offset = 0
            start = self._buffer_offset
            stop = min(start + remaining, self._buffer.n_queries)
            parts.append(_slice_batch(self._buffer, start, stop))
            remaining -= stop - start
            self._buffer_offset = stop
        return parts[0] if len(parts) == 1 else concat_batches(parts)

    def batches(self, n_queries: int, batch_size: int = 1024) -> Iterator[QueryBatch]:
        """Chunk the next ``n_queries`` of the stream into batches."""
        if n_queries < 1:
            raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
        served = 0
        while served < n_queries:
            size = min(int(batch_size), n_queries - served)
            yield self.take(size)
            served += size

    def reset(self) -> None:
        """Rewind to query 0; the replayed stream is byte-identical."""
        self._block_index = 0
        self._buffer = None
        self._buffer_offset = 0


def _slice_batch(batch: QueryBatch, start: int, stop: int) -> QueryBatch:
    return QueryBatch(
        X=batch.X[start:stop],
        is_trigger=batch.is_trigger[start:stop],
        source=batch.source[start:stop],
        sources=batch.sources,
        y_override=None if batch.y_override is None else batch.y_override[:, start:stop],
        override_mask=None if batch.override_mask is None else batch.override_mask[start:stop],
    )
