"""Replay a query stream against a deployed model, defenders watching.

The red-team/blue-team loop: a :class:`~repro.traffic.base.QueryStream`
emits batches, the deployment answers them through the compiled
per-tree interface (or the batch's evasive ``y_override``), and every
:class:`~repro.traffic.defenders.StreamDefender` folds the served
``(X, y_pred)`` into its O(1) state.  The harness runs in chunks so
millions of queries stream through one compiled node table without the
stream ever being materialised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._jsonsafe import finite_or_none
from ..exceptions import ValidationError
from .base import QueryStream
from .defenders import Verdict

__all__ = ["TrafficReport", "replay"]


@dataclass(frozen=True)
class TrafficReport:
    """Outcome of one stream replay.

    ``detection latency`` is per defender: ``verdicts[i].fired_at`` is
    the number of queries the stream had served when the defender
    fired (``None`` = never fired).  ``source_counts`` attributes the
    served queries to the stream's components; ``n_trigger_queries``
    counts the ground-truth trigger probes among them.
    """

    stream: str
    n_queries: int
    n_batches: int
    n_trigger_queries: int
    source_counts: dict[str, int]
    elapsed_seconds: float
    queries_per_second: float
    verdicts: tuple[Verdict, ...] = field(default_factory=tuple)

    def verdict(self, defender: str) -> Verdict:
        """The final verdict of the named defender."""
        for verdict in self.verdicts:
            if verdict.defender == defender:
                return verdict
        raise ValidationError(
            f"no defender named {defender!r} in this replay; present: "
            f"{[v.defender for v in self.verdicts]}"
        )

    def to_dict(self) -> dict:
        # ``queries_per_second`` is ``inf`` on zero-elapsed replays
        # (empty streams, coarse clocks); JSON has no Infinity literal,
        # so non-finite rates serialize as null.
        return {
            "stream": self.stream,
            "n_queries": int(self.n_queries),
            "n_batches": int(self.n_batches),
            "n_trigger_queries": int(self.n_trigger_queries),
            "source_counts": {k: int(v) for k, v in self.source_counts.items()},
            "elapsed_seconds": float(self.elapsed_seconds),
            "queries_per_second": finite_or_none(self.queries_per_second),
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }


def replay(
    stream: QueryStream,
    model,
    defenders=(),
    n_queries: int = 10_000,
    batch_size: int = 1024,
) -> TrafficReport:
    """Stream ``n_queries`` through ``model``, defenders observing.

    ``model`` is anything with ``predict_all`` (a forest, a compiled
    ensemble, a boosted model); when it also has ``compile``, the node
    table is packed once up front.  Batches carrying a full
    ``y_override`` (an evasive server simulated inside the generator)
    skip the honest model entirely; partial overrides are spliced over
    the honest answers.
    """
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    if batch_size < 1:
        raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
    defenders = tuple(defenders)
    compile_model = getattr(model, "compile", None)
    if callable(compile_model):
        compile_model()

    n_trigger = 0
    n_batches = 0
    source_counts: dict[str, int] = {}
    started = time.perf_counter()
    for batch in stream.batches(n_queries, batch_size):
        if batch.y_override is not None and bool(batch.override_mask.all()):
            y_pred = batch.y_override
        else:
            y_pred = model.predict_all(batch.X)
            if batch.y_override is not None:
                y_pred = y_pred.copy()
                y_pred[:, batch.override_mask] = (
                    batch.y_override[:, batch.override_mask]
                )
        for defender in defenders:
            defender.observe(batch.X, y_pred)
        n_trigger += int(batch.is_trigger.sum())
        n_batches += 1
        counts = np.bincount(batch.source, minlength=len(batch.sources))
        for name, count in zip(batch.sources, counts):
            source_counts[name] = source_counts.get(name, 0) + int(count)
    elapsed = time.perf_counter() - started

    return TrafficReport(
        stream=stream.name,
        n_queries=int(n_queries),
        n_batches=n_batches,
        n_trigger_queries=n_trigger,
        source_counts=source_counts,
        elapsed_seconds=elapsed,
        queries_per_second=n_queries / elapsed if elapsed > 0 else float("inf"),
        verdicts=tuple(defender.verdict() for defender in defenders),
    )
