"""Online stream defenders: the blue team.

Both defenders consume the deployed model's traffic in batches through
one uniform interface — ``observe(X, y_pred) -> Verdict`` where
``y_pred`` is the per-tree ``predict_all`` matrix of the batch — and
keep **O(1) memory**: a fixed number of scalar accumulators (plus one
length-``n_trees`` count vector for the suppression distinguisher),
constant in the stream length.  That lets them ride the compiled
inference engine over millions of queries.

- :class:`OnlineSuppressionDistinguisher` streams the Table-2
  behavioural statistic: exact integer counts of each tree's
  disagreement with the majority vote.  Folded over *any* chunking of
  a finite stream, its per-tree rates are bit-for-bit equal to the
  batch :func:`repro.attacks.detection.behavioural_rates` on the
  concatenated queries (integer sums are associative; the single
  division happens at read time).  It fires when any tree's rate
  deviates from its calibrated baseline by more than a
  Hoeffding (default) or binomial-CLT threshold.
- :class:`ExtractionRateMonitor` tracks the running mean of the
  vote-disagreement score and fires on a two-sided CLT test against
  the calibrated benign mean — harvesting queries (off-manifold
  synthesis) shift tree disagreement, in either direction.

Sequential testing honesty: a threshold crossed once in a million peeks
is not a detection at level ``alpha``.  Both defenders therefore test
only at geometrically spaced checkpoints (``min_queries``, then
doubling) and spend ``alpha`` across them (``alpha / 2^(k+1)`` at
checkpoint ``k``), so the *overall* false-alarm probability over an
unbounded stream stays below ``alpha`` — the property
``tests/traffic/test_defenders.py`` measures over seeded trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist

import numpy as np

from .._jsonsafe import finite_or_none
from .._validation import check_X
from ..attacks.detection import behavioural_rates, detect_bits
from ..ensemble.voting import majority_vote, vote_margin
from ..exceptions import ValidationError

__all__ = [
    "ExtractionRateMonitor",
    "OnlineSuppressionDistinguisher",
    "StreamDefender",
    "Verdict",
]

_CLASSES = np.array([-1, 1])


@dataclass(frozen=True)
class Verdict:
    """One defender's standing after a batch.

    ``fired`` latches: once a defender has detected, it stays fired and
    ``fired_at`` records the stream position (queries seen) at the
    detecting checkpoint — the detection latency the benchmark reports.
    ``statistic``/``threshold`` are the values at the most recent
    checkpoint test (NaN before the first one).
    """

    defender: str
    fired: bool
    n_queries: int
    statistic: float
    threshold: float
    fired_at: int | None = None

    def to_dict(self) -> dict:
        # statistic/threshold are NaN before the first checkpoint;
        # strict JSON has no NaN literal, so they serialize as null.
        return {
            "defender": self.defender,
            "fired": bool(self.fired),
            "n_queries": int(self.n_queries),
            "statistic": finite_or_none(self.statistic),
            "threshold": finite_or_none(self.threshold),
            "fired_at": None if self.fired_at is None else int(self.fired_at),
        }


class StreamDefender:
    """Uniform defender base: checkpointed sequential testing.

    Subclasses implement ``_update(X, y_pred)`` (accumulate the batch
    into O(1) state) and ``_test(alpha_k) -> (statistic, threshold)``;
    the base runs the geometric checkpoint schedule with alpha
    spending, latches the verdict, and enforces the shared interface
    (``observe`` / ``reset`` / ``state_size``).
    """

    name = "defender"

    def __init__(self, alpha: float = 0.05, min_queries: int = 256) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
        if min_queries < 1:
            raise ValidationError(f"min_queries must be >= 1, got {min_queries}")
        self.alpha = float(alpha)
        self.min_queries = int(min_queries)
        self.reset()

    # -- subclass hooks -------------------------------------------------

    def _update(self, X: np.ndarray, y_pred: np.ndarray) -> None:
        raise NotImplementedError

    def _test(self, alpha_k: float) -> tuple[float, float]:
        raise NotImplementedError

    def _reset_state(self) -> None:
        raise NotImplementedError

    def _state_arrays(self) -> tuple[np.ndarray, ...]:
        """Arrays held as state (for the O(1)-memory regression test)."""
        return ()

    # -- the uniform interface ------------------------------------------

    def observe(self, X, y_pred) -> Verdict:
        """Fold one batch into the defender state and report the verdict.

        ``y_pred`` is the served per-tree ±1 label matrix, shape
        ``(n_trees, n_queries)`` — what the deployment actually
        answered, which under an evasive server differs from the honest
        model's output.
        """
        y_pred = np.asarray(y_pred)
        if y_pred.ndim != 2:
            raise ValidationError(
                f"y_pred must be 2-D (n_trees, n_queries), got shape {y_pred.shape}"
            )
        X = check_X(X)
        if X.shape[0] != y_pred.shape[1]:
            raise ValidationError(
                f"X and y_pred disagree on the batch size: "
                f"{X.shape[0]} != {y_pred.shape[1]}"
            )
        self._update(X, y_pred)
        self._n += int(y_pred.shape[1])

        while not self._fired and self._n >= self._next_check:
            alpha_k = self.alpha * 2.0 ** -(self._checkpoint + 1)
            self._statistic, self._threshold = self._test(alpha_k)
            if self._statistic > self._threshold:
                self._fired = True
                self._fired_at = self._n
            self._checkpoint += 1
            self._next_check *= 2
        return self.verdict()

    def verdict(self) -> Verdict:
        """The current (latched) verdict without observing anything."""
        return Verdict(
            defender=self.name,
            fired=self._fired,
            n_queries=self._n,
            statistic=self._statistic,
            threshold=self._threshold,
            fired_at=self._fired_at,
        )

    def reset(self) -> None:
        """Forget the stream (calibration is kept)."""
        self._n = 0
        self._checkpoint = 0
        self._next_check = self.min_queries
        self._fired = False
        self._fired_at: int | None = None
        self._statistic = float("nan")
        self._threshold = float("nan")
        self._reset_state()

    def state_size(self) -> int:
        """Total scalar slots of mutable state — constant in stream length."""
        return 7 + sum(int(array.size) for array in self._state_arrays())


class OnlineSuppressionDistinguisher(StreamDefender):
    """Streaming Table-2 behavioural statistic with a deviation test.

    State: one int64 disagreement count per tree plus the query count.
    ``rates()`` exposes the streaming statistic itself — bit-for-bit
    what :func:`repro.attacks.detection.behavioural_rates` computes on
    the concatenated stream — and :meth:`detection_result` feeds it to
    the *existing* Table-2 decision rule
    (:func:`repro.attacks.detection.detect_bits`), closing the loop
    from live traffic back to the paper's detection table.

    ``threshold="hoeffding"`` (default) is distribution-free:
    ``eps(n) = sqrt(ln(2 m / alpha_k) / (2 n))`` union-bounded over the
    ``m`` trees.  ``threshold="clt"`` uses the per-tree binomial normal
    approximation (tighter, approximate).
    """

    name = "suppression-distinguisher"

    def __init__(
        self,
        baseline_rates,
        alpha: float = 0.05,
        min_queries: int = 256,
        threshold: str = "hoeffding",
        n_reference: int | None = None,
    ) -> None:
        baseline = np.asarray(baseline_rates, dtype=np.float64)
        if baseline.ndim != 1 or baseline.size == 0:
            raise ValidationError("baseline_rates must be a non-empty 1-D array")
        if threshold not in ("hoeffding", "clt"):
            raise ValidationError(
                f"threshold must be 'hoeffding' or 'clt', got {threshold!r}"
            )
        # Degenerate calibrated rates (a tree never/always disagreeing
        # on the reference sample) would give the CLT test zero
        # variance; clip by the reference resolution.
        resolution = 1.0 / (2 * max(int(n_reference or baseline.size), 2))
        self.baseline = np.clip(baseline, resolution, 1.0 - resolution)
        self.threshold_kind = threshold
        super().__init__(alpha=alpha, min_queries=min_queries)

    @classmethod
    def calibrate(
        cls,
        model,
        X_reference,
        alpha: float = 0.05,
        min_queries: int = 256,
        threshold: str = "hoeffding",
    ) -> "OnlineSuppressionDistinguisher":
        """Calibrate per-tree baseline rates on benign reference data."""
        X_reference = check_X(X_reference, name="X_reference")
        rates = behavioural_rates(model.predict_all(X_reference))
        return cls(
            rates,
            alpha=alpha,
            min_queries=min_queries,
            threshold=threshold,
            n_reference=X_reference.shape[0],
        )

    # -- state ----------------------------------------------------------

    def _reset_state(self) -> None:
        self._counts = np.zeros(self.baseline.size, dtype=np.int64)

    def _state_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._counts, self.baseline)

    def _update(self, X: np.ndarray, y_pred: np.ndarray) -> None:
        if y_pred.shape[0] != self.baseline.size:
            raise ValidationError(
                f"y_pred has {y_pred.shape[0]} trees, calibrated for "
                f"{self.baseline.size}"
            )
        majority = majority_vote(y_pred, _CLASSES)
        self._counts += (y_pred != majority[None, :]).sum(axis=1)

    # -- the statistic --------------------------------------------------

    def rates(self) -> np.ndarray:
        """Per-tree disagreement rates over everything observed so far."""
        if self._n == 0:
            raise ValidationError("no queries observed yet")
        return self._counts / self._n

    def detection_result(self, true_bits, strategy: str = "bands"):
        """Score the streamed statistic as a Table-2 detection attempt."""
        return detect_bits(self.rates(), true_bits, strategy)

    def _test(self, alpha_k: float) -> tuple[float, float]:
        deviation = np.abs(self.rates() - self.baseline)
        m = self.baseline.size
        if self.threshold_kind == "hoeffding":
            eps = math.sqrt(math.log(2.0 * m / alpha_k) / (2.0 * self._n))
            return float(deviation.max()), eps
        z = NormalDist().inv_cdf(1.0 - alpha_k / (2.0 * m))
        eps_t = z * np.sqrt(self.baseline * (1.0 - self.baseline) / self._n)
        # Normalise so one scalar statistic/threshold pair is reported:
        # the worst per-tree deviation in threshold units.
        return float((deviation / eps_t).max()), 1.0


class ExtractionRateMonitor(StreamDefender):
    """Running-mean shift test on the vote-disagreement score.

    Extraction harvesters query off the data manifold (synthesised or
    spread-out points), where trees disagree very differently than on
    benign traffic; the monitor accumulates the disagreement-score sum
    in O(1) and fires a two-sided CLT test against the calibrated
    benign mean and variance.
    """

    name = "extraction-monitor"

    def __init__(
        self,
        baseline_mean: float,
        baseline_var: float,
        alpha: float = 0.05,
        min_queries: int = 256,
    ) -> None:
        if baseline_var < 0.0:
            raise ValidationError(f"baseline_var must be >= 0, got {baseline_var}")
        self.baseline_mean = float(baseline_mean)
        self.baseline_var = max(float(baseline_var), 1e-6)
        super().__init__(alpha=alpha, min_queries=min_queries)

    @classmethod
    def calibrate(
        cls, model, X_reference, alpha: float = 0.05, min_queries: int = 256
    ) -> "ExtractionRateMonitor":
        """Calibrate the benign disagreement-score distribution."""
        X_reference = check_X(X_reference, name="X_reference")
        scores = 1.0 - np.abs(2.0 * vote_margin(model.predict_all(X_reference)) - 1.0)
        return cls(
            baseline_mean=float(scores.mean()),
            baseline_var=float(scores.var()),
            alpha=alpha,
            min_queries=min_queries,
        )

    def _reset_state(self) -> None:
        self._score_sum = 0.0

    def _update(self, X: np.ndarray, y_pred: np.ndarray) -> None:
        scores = 1.0 - np.abs(2.0 * vote_margin(y_pred) - 1.0)
        self._score_sum += float(scores.sum())

    def observed_mean(self) -> float:
        """Mean disagreement score over everything observed so far."""
        if self._n == 0:
            raise ValidationError("no queries observed yet")
        return self._score_sum / self._n

    def _test(self, alpha_k: float) -> tuple[float, float]:
        z = abs(self.observed_mean() - self.baseline_mean) * math.sqrt(
            self._n / self.baseline_var
        )
        return z, NormalDist().inv_cdf(1.0 - alpha_k / 2.0)
