"""Adversarial traffic simulation: streaming red team vs. online blue team.

The paper's deployment serves millions of black-box ``predict.all``
queries; this package turns the repo's one-shot attacks into that
stream problem.  Generators (:mod:`~repro.traffic.generators`) compose
benign and adversarial query sources under a strict seeding contract;
defenders (:mod:`~repro.traffic.defenders`) watch the served traffic
in O(1) memory; :func:`~repro.traffic.replay.replay` drives a stream
through the compiled inference engine with defenders attached; and
:mod:`~repro.traffic.scenarios` names the standard red-team/blue-team
match-ups for the CLI, the scenario matrix and the benchmark.
"""

from .base import (
    BaseGenerator,
    QueryBatch,
    QueryStream,
    as_seed_sequence,
    child_seed,
    concat_batches,
)
from .defenders import (
    ExtractionRateMonitor,
    OnlineSuppressionDistinguisher,
    StreamDefender,
    Verdict,
)
from .generators import (
    ExtractionHarvestGenerator,
    LegitTrafficGenerator,
    MixedStream,
    SuppressionEvasionGenerator,
    TriggerProbeGenerator,
)
from .replay import TrafficReport, replay
from .scenarios import (
    TrafficScenario,
    build_scenario,
    replay_scenario,
    scenario_description,
    traffic_scenarios,
)

__all__ = [
    "BaseGenerator",
    "ExtractionHarvestGenerator",
    "ExtractionRateMonitor",
    "LegitTrafficGenerator",
    "MixedStream",
    "OnlineSuppressionDistinguisher",
    "QueryBatch",
    "QueryStream",
    "StreamDefender",
    "SuppressionEvasionGenerator",
    "TrafficReport",
    "TrafficScenario",
    "TriggerProbeGenerator",
    "Verdict",
    "as_seed_sequence",
    "build_scenario",
    "child_seed",
    "concat_batches",
    "replay",
    "replay_scenario",
    "scenario_description",
    "traffic_scenarios",
]
