"""repro — reproduction of *Watermarking Decision Tree Ensembles*
(Calzavara, Cazzaro, Gera, Orlando; EDBT 2025, arXiv:2410.04570).

The library implements the paper's watermarking scheme for random
forests (creation, black-box verification, security analysis) together
with every substrate it depends on: a weighted CART/forest learner, a
grid-search/CV layer, SAT/SMT solvers for the forgery attack, the 3SAT
NP-hardness reduction, synthetic stand-ins for the evaluation datasets,
an attack suite and an experiment harness regenerating every table and
figure of the evaluation section.

Quick start::

    from repro import watermark, random_signature, Judge

    sigma = random_signature(m=32, random_state=7)
    wm = watermark(X_train, y_train, sigma, trigger_size=16, random_state=7)
    wm.ensemble.predict(X_test)

See ``examples/`` for complete scenarios and DESIGN.md for the system
inventory.
"""

from . import (
    attacks,
    core,
    datasets,
    ensemble,
    experiments,
    hardness,
    model_selection,
    persistence,
    solver,
    trees,
)
from .core import (
    Judge,
    OwnershipClaim,
    Signature,
    WatermarkSecret,
    WatermarkedModel,
    random_signature,
    signature_from_identity,
    verify_ownership,
    watermark,
)
from .ensemble import GradientBoostingClassifier, RandomForestClassifier
from .exceptions import (
    ConvergenceError,
    NotFittedError,
    ReproError,
    ResourceLimitError,
    SerializationError,
    SolverError,
    ValidationError,
    VerificationError,
)
from .trees import DecisionTreeClassifier

__version__ = "1.0.0"

__all__ = [
    "ConvergenceError",
    "DecisionTreeClassifier",
    "GradientBoostingClassifier",
    "Judge",
    "NotFittedError",
    "OwnershipClaim",
    "RandomForestClassifier",
    "ReproError",
    "ResourceLimitError",
    "SerializationError",
    "Signature",
    "SolverError",
    "ValidationError",
    "VerificationError",
    "WatermarkSecret",
    "WatermarkedModel",
    "attacks",
    "core",
    "datasets",
    "ensemble",
    "experiments",
    "hardness",
    "model_selection",
    "persistence",
    "random_signature",
    "signature_from_identity",
    "solver",
    "trees",
    "verify_ownership",
    "watermark",
]
