"""repro — reproduction of *Watermarking Decision Tree Ensembles*
(Calzavara, Cazzaro, Gera, Orlando; EDBT 2025, arXiv:2410.04570).

The library implements the paper's watermarking scheme for random
forests (creation, black-box verification, security analysis) together
with every substrate it depends on: a weighted CART/forest learner, a
grid-search/CV layer, SAT/SMT solvers for the forgery attack, the 3SAT
NP-hardness reduction, synthetic stand-ins for the evaluation datasets,
an attack suite and an experiment harness regenerating every table and
figure of the evaluation section.

Quick start (the composable pipeline API)::

    from repro import TriggerPolicy, Watermarker, random_signature

    sigma = random_signature(m=32, random_state=7)
    wm = Watermarker(signature=sigma, trigger=TriggerPolicy(size=16),
                     random_state=7).fit(X_train, y_train)
    wm.ensemble.predict(X_test)

The legacy ``watermark(...)`` keyword-pile entry point remains as a
thin shim over :class:`~repro.api.Watermarker` (bitwise-identical
results).  Attacks share one protocol and registry (:mod:`repro.api`),
and :func:`~repro.experiments.run_scenario_matrix` sweeps them across
strengths and datasets.  See ``examples/`` for complete scenarios and
``docs/api.md`` for the API reference.
"""

from . import (
    api,
    attacks,
    core,
    datasets,
    ensemble,
    experiments,
    hardness,
    model_selection,
    persistence,
    solver,
    traffic,
    trees,
)
from .api import (
    Attack,
    AttackReport,
    AttackTarget,
    EmbeddingSchedule,
    TrainerConfig,
    TriggerPolicy,
    Watermarker,
    available_attacks,
    make_attack,
)
from .core import (
    Judge,
    OwnershipClaim,
    Signature,
    WatermarkSecret,
    WatermarkedModel,
    random_signature,
    signature_from_identity,
    verify_ownership,
    watermark,
)
from .ensemble import GradientBoostingClassifier, RandomForestClassifier
from .exceptions import (
    ConvergenceError,
    NotFittedError,
    ReproError,
    ResourceLimitError,
    SerializationError,
    SolverError,
    ValidationError,
    VerificationError,
)
from .experiments import run_scenario_matrix
from .trees import DecisionTreeClassifier

__version__ = "1.1.0"

__all__ = [
    "Attack",
    "AttackReport",
    "AttackTarget",
    "ConvergenceError",
    "DecisionTreeClassifier",
    "EmbeddingSchedule",
    "GradientBoostingClassifier",
    "Judge",
    "NotFittedError",
    "OwnershipClaim",
    "RandomForestClassifier",
    "ReproError",
    "ResourceLimitError",
    "SerializationError",
    "Signature",
    "SolverError",
    "TrainerConfig",
    "TriggerPolicy",
    "ValidationError",
    "VerificationError",
    "WatermarkSecret",
    "WatermarkedModel",
    "Watermarker",
    "api",
    "attacks",
    "available_attacks",
    "core",
    "datasets",
    "ensemble",
    "experiments",
    "hardness",
    "make_attack",
    "model_selection",
    "persistence",
    "random_signature",
    "run_scenario_matrix",
    "signature_from_identity",
    "solver",
    "traffic",
    "trees",
    "verify_ownership",
    "watermark",
]
