"""Strict JSON serialization helpers.

RFC 8259 has no representation for ``inf``/``nan``, but Python's
:func:`json.dumps` happily emits the JavaScript literals ``Infinity`` and
``NaN`` unless told otherwise — and downstream parsers (``jq``, browsers,
strict ``json.loads`` consumers) then reject the document.  Every dumps
call in this package goes through :func:`dumps` (or passes
``allow_nan=False`` explicitly) so a non-finite float is a loud error at
the producer, never a silently invalid artefact.  Values that are
*legitimately* non-finite (a queries-per-second rate over a zero-elapsed
replay, a sequential-test statistic before the first checkpoint) are
clamped to ``null`` via :func:`finite_or_none` / :func:`json_safe` before
they reach the encoder.
"""

from __future__ import annotations

import json
import math
from typing import Any

import numpy as np

__all__ = ["dumps", "finite_or_none", "json_safe"]


def finite_or_none(value: Any) -> float | None:
    """``float(value)`` if finite, else ``None`` (serialized as ``null``)."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def json_safe(value: Any) -> Any:
    """Recursively convert *value* into strictly-JSON-serializable types.

    numpy scalars become Python scalars, arrays become lists, dict keys
    become strings, and non-finite floats become ``None``.
    """
    if isinstance(value, np.ndarray):
        value = value.tolist()
    elif isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(key): json_safe(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def dumps(data: Any, **kwargs: Any) -> str:
    """``json.dumps`` with ``allow_nan=False`` as the default."""
    kwargs.setdefault("allow_nan", False)
    # repro: allow[RPR003] this *is* the sanctioned wrapper — setdefault above injects allow_nan=False
    return json.dumps(data, **kwargs)
