"""Model-selection substrate: splitting, metrics and grid search."""

from .grid_search import DEFAULT_FOREST_GRID, GridSearchResult, grid_search_forest
from .metrics import accuracy, balanced_accuracy, confusion_matrix, precision_recall_f1
from .splits import StratifiedKFold, stratified_subsample, train_test_split

__all__ = [
    "DEFAULT_FOREST_GRID",
    "GridSearchResult",
    "StratifiedKFold",
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "grid_search_forest",
    "precision_recall_f1",
    "stratified_subsample",
    "train_test_split",
]
