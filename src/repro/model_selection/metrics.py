"""Classification metrics.

Accuracy is what the paper reports throughout; the confusion-matrix
based metrics are provided because the stand-in datasets include a
strongly imbalanced one (ijcnn1-like, 10/90) where accuracy alone can
mislead during development.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "balanced_accuracy",
]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValidationError(
            f"y_true and y_pred must be 1-D of equal length, got {y_true.shape} "
            f"and {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValidationError("metrics need at least one sample")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = #samples of class ``labels[i]``
    predicted as ``labels[j]``."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    position = {int(label): i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.shape[0], labels.shape[0]), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if int(t) not in position or int(p) not in position:
            raise ValidationError(f"label {t}/{p} not listed in labels={labels.tolist()}")
        matrix[position[int(t)], position[int(p)]] += 1
    return matrix


def precision_recall_f1(y_true, y_pred, positive_label: int = 1) -> tuple[float, float, float]:
    """Precision, recall and F1 for the positive class.

    Degenerate denominators (no predicted / no actual positives) yield
    0.0 rather than raising, matching common library behaviour.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    predicted_pos = y_pred == positive_label
    actual_pos = y_true == positive_label
    true_pos = float(np.sum(predicted_pos & actual_pos))
    precision = true_pos / predicted_pos.sum() if predicted_pos.any() else 0.0
    recall = true_pos / actual_pos.sum() if actual_pos.any() else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return float(precision), float(recall), float(f1)


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean of per-class recalls (robust to class imbalance)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    recalls = []
    for label in np.unique(y_true):
        members = y_true == label
        recalls.append(float(np.mean(y_pred[members] == label)))
    return float(np.mean(recalls))
