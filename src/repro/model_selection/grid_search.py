"""Grid search over forest hyper-parameters with stratified CV.

Algorithm 1 of the paper begins with ``GridSearch(D_train, m)``: find
the best hyper-parameters ``H`` for an ensemble of ``m`` trees before
any watermarking happens.  This module reproduces that step for our
:class:`~repro.ensemble.RandomForestClassifier`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_random_state, check_X_y
from ..exceptions import ValidationError
from ..ensemble.forest import RandomForestClassifier
from .metrics import accuracy
from .splits import StratifiedKFold

__all__ = ["GridSearchResult", "grid_search_forest", "DEFAULT_FOREST_GRID"]

#: A compact default grid over the two structural hyper-parameters the
#: paper's scheme manipulates (depth, leaf count) plus leaf-size
#: regularisation.  Kept small on purpose — grid search runs inside the
#: watermarking pipeline, once per dataset.
DEFAULT_FOREST_GRID: dict[str, list] = {
    "max_depth": [6, 10, 16],
    "min_samples_leaf": [1, 4],
}


@dataclass
class GridSearchResult:
    """Outcome of a grid search.

    ``best_params`` maps parameter name to chosen value; ``table`` keeps
    one ``(params, mean_score, fold_scores)`` triple per grid point for
    inspection.
    """

    best_params: dict
    best_score: float
    table: list[tuple[dict, float, list[float]]] = field(default_factory=list)


def _iter_grid(grid: dict[str, list]):
    names = sorted(grid)
    for values in itertools.product(*(grid[name] for name in names)):
        yield dict(zip(names, values))


def grid_search_forest(
    X,
    y,
    n_estimators: int,
    param_grid: dict[str, list] | None = None,
    n_splits: int = 3,
    tree_feature_fraction: float = 0.7,
    n_jobs: int | None = None,
    random_state=None,
) -> GridSearchResult:
    """Select forest hyper-parameters by mean CV accuracy.

    Parameters
    ----------
    X, y:
        Training data (binary ±1 labels in the watermarking pipeline,
        though any integer labels work here).
    n_estimators:
        Ensemble size ``m`` — fixed, not searched, matching the paper
        where ``m`` equals the signature length.
    param_grid:
        Mapping from :class:`RandomForestClassifier` parameter names to
        candidate values; defaults to :data:`DEFAULT_FOREST_GRID`.
    n_splits:
        Stratified CV folds.
    tree_feature_fraction:
        Per-tree feature subspace fraction, forwarded to every candidate.
    n_jobs:
        Parallel tree fitting within each candidate forest (see
        :class:`RandomForestClassifier`).
    random_state:
        Seed/generator; each fold/candidate gets a derived child seed so
        results are reproducible yet not artificially correlated.

    Returns
    -------
    GridSearchResult
        Best parameters (ties break toward the earlier grid point, i.e.
        smaller values in sorted-name order — a deterministic choice).
    """
    X, y = check_X_y(X, y)
    if param_grid is None:
        param_grid = DEFAULT_FOREST_GRID
    if not param_grid:
        raise ValidationError("param_grid must contain at least one parameter")
    forest_params = set(RandomForestClassifier().get_params())
    unknown = set(param_grid) - forest_params
    if unknown:
        raise ValidationError(f"param_grid has unknown parameters: {sorted(unknown)}")

    rng = check_random_state(random_state)
    fold_seed = int(rng.integers(2**31 - 1))
    folds = list(StratifiedKFold(n_splits=n_splits, random_state=fold_seed).split(X, y))
    # Materialise each fold's matrices once, outside the candidate loop:
    # every grid point then trains on the *same array objects*, so the
    # per-fold presort cache (see repro.trees.presort) is computed once
    # per fold instead of once per (candidate, fold) pair.
    fold_data = [
        (X[train_index], y[train_index], X[test_index], y[test_index])
        for train_index, test_index in folds
    ]

    best: tuple[float, dict] | None = None
    table: list[tuple[dict, float, list[float]]] = []
    for params in _iter_grid(param_grid):
        scores: list[float] = []
        for X_train, y_train, X_test, y_test in fold_data:
            forest = RandomForestClassifier(
                n_estimators=n_estimators,
                tree_feature_fraction=tree_feature_fraction,
                random_state=int(rng.integers(2**31 - 1)),
                n_jobs=n_jobs,
                **params,
            )
            forest.fit(X_train, y_train)
            scores.append(accuracy(y_test, forest.predict(X_test)))
        mean_score = float(np.mean(scores))
        table.append((dict(params), mean_score, scores))
        if best is None or mean_score > best[0] + 1e-12:
            best = (mean_score, dict(params))

    assert best is not None
    return GridSearchResult(best_params=best[1], best_score=best[0], table=table)
