"""Dataset splitting utilities: train/test split and stratified k-fold.

These replace the sklearn helpers the paper's implementation relies on.
Stratification matters here twice: the datasets are class-imbalanced
(ijcnn1 is 10/90), and the paper reduces ijcnn1 by *stratified* random
sampling, which :func:`stratified_subsample` reproduces.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_random_state, check_X_y
from ..exceptions import ValidationError

__all__ = ["train_test_split", "StratifiedKFold", "stratified_subsample"]


def train_test_split(
    X, y, test_size: float = 0.2, stratify: bool = True, random_state=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    test_size:
        Fraction of samples assigned to the test set, in (0, 1).
    stratify:
        Preserve per-class proportions (recommended; on by default).
    random_state:
        Seed or generator.

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = check_random_state(random_state)
    n = X.shape[0]

    if stratify:
        test_index: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = int(round(test_size * members.shape[0]))
            n_test = min(max(n_test, 1), members.shape[0] - 1) if members.shape[0] > 1 else 0
            test_index.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.array(test_index, dtype=np.int64)] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True

    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class StratifiedKFold:
    """Stratified k-fold cross-validation iterator.

    Each class's samples are shuffled and dealt round-robin into ``k``
    folds, so every fold approximately preserves the class distribution.
    """

    def __init__(self, n_splits: int = 5, random_state=None) -> None:
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, X, y):
        """Yield ``(train_index, test_index)`` pairs."""
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        fold_of = np.empty(n, dtype=np.int64)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if members.shape[0] < self.n_splits:
                raise ValidationError(
                    f"class {label} has only {members.shape[0]} samples, fewer than "
                    f"n_splits={self.n_splits}"
                )
            rng.shuffle(members)
            fold_of[members] = np.arange(members.shape[0]) % self.n_splits
        for fold in range(self.n_splits):
            test_mask = fold_of == fold
            yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask)


def stratified_subsample(X, y, n_samples: int, random_state=None):
    """Stratified random subsample of ``n_samples`` instances.

    Reproduces the paper's reduction of ijcnn1 to 10,000 instances
    "using stratified random sampling".  Per-class quotas are
    proportional to class frequency (largest-remainder rounding).
    """
    X, y = check_X_y(X, y)
    if not 1 <= n_samples <= X.shape[0]:
        raise ValidationError(
            f"n_samples must be in [1, {X.shape[0]}], got {n_samples}"
        )
    rng = check_random_state(random_state)

    labels, counts = np.unique(y, return_counts=True)
    exact = counts * (n_samples / X.shape[0])
    quotas = np.floor(exact).astype(np.int64)
    remainder = n_samples - quotas.sum()
    if remainder > 0:
        # Hand the leftover slots to the classes with the largest
        # fractional parts (largest-remainder method).
        order = np.argsort(-(exact - quotas))
        quotas[order[:remainder]] += 1

    chosen: list[np.ndarray] = []
    for label, quota in zip(labels, quotas):
        members = np.flatnonzero(y == label)
        rng.shuffle(members)
        chosen.append(members[:quota])
    index = np.sort(np.concatenate(chosen))
    return X[index], y[index]
