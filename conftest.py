"""Root pytest configuration.

Registers the ``--quick`` option used by the benchmark suite
(``benchmarks/``): command-line options must be declared in an
*initial* conftest, and this is the only one guaranteed to be loaded
both for ``pytest`` (tier-1 tests) and ``pytest benchmarks/...``
invocations.  The equivalent environment switch is
``REPRO_BENCH_QUICK=1`` (see ``benchmarks/conftest.py``).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmark smoke mode: shrink workloads so every benchmark "
        "finishes in seconds (same as REPRO_BENCH_QUICK=1)",
    )
